(** Virtual time measured in CPU clock cycles.

    All latencies in the simulator are expressed in cycles of the simulated
    machine clock.  The reference machine is the paper's 8-core AMD Opteron
    4122 at 2.2 GHz, so conversion between cycles and wall-clock time uses
    that frequency unless overridden. *)

type t = int
(** A cycle count (or a point in virtual time, as cycles since boot). *)

val zero : t

val clock_ghz : float
(** Clock rate of the simulated machine in GHz (2.2, per the paper). *)

val of_ns : float -> t
(** [of_ns ns] is the number of cycles covering [ns] nanoseconds. *)

val of_us : float -> t
val of_ms : float -> t
val of_sec : float -> t

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: cycles with a time equivalent, e.g.
    ["25000 cyc (11.4 us)"]. *)

val pp_time : Format.formatter -> t -> unit
(** Time-only rendering with an auto-selected unit, e.g. ["1.5 us"]. *)
