type align = Left | Right

type t = {
  headers : string list;
  mutable rows : string list list;
  mutable aligns : align list option;
}

let create ~headers = { headers; rows = []; aligns = None }
let set_aligns t aligns = t.aligns <- Some aligns
let add_row t row = t.rows <- row :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || String.contains "+-.,eE%x " c) s

let pp ppf t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.headers;
  List.iter measure rows;
  let aligns =
    match t.aligns with
    | Some a -> Array.of_list a
    | None ->
        (* Infer per-column alignment from the data rows. *)
        Array.init ncols (fun i ->
            let col_numeric =
              List.for_all (fun row ->
                  match List.nth_opt row i with
                  | Some cell -> looks_numeric cell
                  | None -> true)
                rows
            in
            if col_numeric && rows <> [] then Right else Left)
  in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    let fill = String.make (max 0 n) ' ' in
    match if i < Array.length aligns then aligns.(i) else Left with
    | Left -> cell ^ fill
    | Right -> fill ^ cell
  in
  let render_row row =
    let cells = List.mapi pad row in
    Format.fprintf ppf "| %s |@." (String.concat " | " cells)
  in
  let rule () =
    let dashes = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    Format.fprintf ppf "+%s+@." (String.concat "+" dashes)
  in
  rule ();
  render_row t.headers;
  rule ();
  List.iter render_row rows;
  rule ()

let to_string t = Format.asprintf "%a" pp t
