#!/usr/bin/env python3
"""Allocation-regression guard for the host bench.

Compares every `minor_words_per_event` cell in a fresh BENCH_host.json
against the committed baseline (bench/host_alloc_baseline.json) and fails
if any cell grew more than the tolerance.  Wall-clock and events/sec are
machine-dependent noise and are deliberately not checked; words/event is
deterministic for a fixed workload, so a >20% jump means a real
allocation regression on the host hot path, not a slow runner.

Usage: check_alloc_regression.py BASELINE.json CURRENT.json
"""
import json
import sys

TOLERANCE = 1.20  # fail when current > baseline * TOLERANCE


def cells(doc, path=""):
    """Yield (path, minor_words_per_event) for every bench cell."""
    if isinstance(doc, dict):
        if "minor_words_per_event" in doc:
            yield path, float(doc["minor_words_per_event"])
        for key, value in doc.items():
            yield from cells(value, f"{path}/{key}" if path else key)


def main(baseline_path, current_path):
    with open(baseline_path) as f:
        baseline = dict(cells(json.load(f)))
    with open(current_path) as f:
        current = dict(cells(json.load(f)))
    if not current:
        print(f"{current_path}: no minor_words_per_event cells found", file=sys.stderr)
        return 1
    failed = False
    for path, words in sorted(current.items()):
        ref = baseline.get(path)
        if ref is None:
            print(f"note {path}: {words:.2f} w/event (no baseline; add one)")
            continue
        limit = ref * TOLERANCE
        if ref > 0 and words > limit:
            failed = True
            print(f"FAIL {path}: {words:.2f} w/event > limit {limit:.2f} (baseline {ref:.2f})")
        else:
            print(f"ok   {path}: {words:.2f} w/event (baseline {ref:.2f}, limit {limit:.2f})")
    if failed:
        print(
            "allocation regression: minor words/event grew >20% vs the committed "
            "baseline; if intentional, regenerate bench/host_alloc_baseline.json "
            "from a release-profile `bench host --json` run",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1], sys.argv[2]))
