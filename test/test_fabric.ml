(* End-to-end tests of the forwarding fabric: four-plus execution groups
   routed over the shared poller pool, request batching (leaders, riders,
   drains) on a single endpoint, doorbell suppression accounting, and the
   local fast-path promotion table.  The fault-facing behaviour (retries,
   degradation, watchdog respawns) is covered by test_faults.ml and the
   mvcheck fabric scenarios. *)

module Fabric = Mv_hvm.Fabric
open Multiverse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let runtime rs =
  match rs.Toolchain.rs_runtime with
  | Some rt -> rt
  | None -> Alcotest.fail "no runtime handle"

(* --- routing: more execution groups than dedicated servers --- *)

let fanout_program =
  {
    Toolchain.prog_name = "fabric-fanout";
    prog_main =
      (fun env ->
        let open Mv_guest in
        let libc = Libc.create env in
        let n = 4 in
        let slots = Array.make n 0 in
        let spawn i =
          env.Env.thread_create ~name:(Printf.sprintf "fan-%d" i) (fun () ->
              let acc = ref 0 in
              for k = 1 to 5 do
                env.Env.work 10_000;
                ignore (env.Env.getrusage ());
                ignore (env.Env.getpid ());
                acc := !acc + k
              done;
              slots.(i) <- !acc)
        in
        let ts = List.init n spawn in
        List.iter env.Env.thread_join ts;
        Libc.printf libc "fanout %d %d %d %d\n" slots.(0) slots.(1) slots.(2) slots.(3);
        Libc.flush_all libc);
  }

let test_four_groups_routed () =
  let rs = Toolchain.run_multiverse (Toolchain.hybridize fanout_program) in
  check_string "stdout" "fanout 15 15 15 15\n" rs.Toolchain.rs_stdout;
  check_int "exit code" 0 rs.Toolchain.rs_exit_code;
  let rt = runtime rs in
  let f = Runtime.fabric rt in
  (* main + four workers, each a top-level HRT thread with its own group. *)
  check_bool "at least five execution groups" true (Runtime.groups_created rt >= 5);
  (* One fabric endpoint per group plus the signal-injection endpoint,
     all served by the one shared pool — not one server loop per group. *)
  check_bool "one endpoint per group plus signals" true
    (Fabric.endpoints f >= Runtime.groups_created rt + 1);
  check_bool "shared poller pool" true (Fabric.pollers f >= 2);
  (* Routing decouples servers from groups: a single-group run uses the
     same pool size as the five-group run (topology-sized, not per-group). *)
  let single =
    {
      Toolchain.prog_name = "fabric-single";
      prog_main = (fun env -> ignore (env.Mv_guest.Env.getrusage ()));
    }
  in
  let rs1 = Toolchain.run_multiverse (Toolchain.hybridize single) in
  check_int "pool size independent of group count"
    (Fabric.pollers (Runtime.fabric (runtime rs1)))
    (Fabric.pollers f);
  (* 4 workers x 5 getrusage forwarded, plus prints and getpid calls. *)
  check_bool "forwarded calls went through the fabric" true (Fabric.calls f >= 20);
  check_bool "vdso-like calls hit the local fast path" true (Fabric.local_hits f > 0);
  check_bool "transport never exceeds entry calls" true
    (Fabric.transport_calls f <= Fabric.calls f)

(* --- batching: concurrent nested callers on one endpoint --- *)

(* Four nested AeroKernel threads share the top-level group's endpoint;
   whenever one of them has a call in flight, the others ride the
   shared-page ring instead of ringing their own doorbell. *)
let rider_workload ~batching rt =
  Fabric.set_batching (Runtime.fabric rt) batching;
  let partner =
    Runtime.hrt_invoke rt ~name:"top" (fun env ->
        let nested =
          List.init 4 (fun i ->
              Runtime.create_nested rt ~name:(Printf.sprintf "rider-%d" i)
                (fun () ->
                  for _ = 1 to 4 do
                    ignore (env.Mv_guest.Env.getrusage ())
                  done))
        in
        List.iter (fun th -> Runtime.join_nested rt th) nested)
  in
  Runtime.join rt partner

let test_riders_batch () =
  let rs =
    Toolchain.run_accelerator ~name:"fabric-riders" (fun ~ros_env:_ ~rt ->
        rider_workload ~batching:true rt)
  in
  let f = Runtime.fabric (runtime rs) in
  check_bool "doorbells were suppressed (riders > 0)" true (Fabric.riders f > 0);
  check_int "every rider was drained exactly once" (Fabric.riders f) (Fabric.drained f);
  check_int "no ride timeouts in a fault-free run" 0 (Fabric.ride_timeouts f);
  check_bool "fewer doorbells than calls" true
    (Fabric.transport_calls f < Fabric.calls f);
  check_bool "drain rounds happened" true (Fabric.drains f > 0)

let test_batching_toggle () =
  let run batching =
    Toolchain.run_accelerator ~name:"fabric-toggle" (fun ~ros_env:_ ~rt ->
        rider_workload ~batching rt)
  in
  let rs_on = run true in
  let rs_off = run false in
  let f_on = Runtime.fabric (runtime rs_on) in
  let f_off = Runtime.fabric (runtime rs_off) in
  check_int "batching off rides nothing" 0 (Fabric.riders f_off);
  check_bool "batching on rides" true (Fabric.riders f_on > 0);
  check_int "same entry-call count either way" (Fabric.calls f_off) (Fabric.calls f_on);
  check_bool "batching rings fewer doorbells" true
    (Fabric.transport_calls f_on < Fabric.transport_calls f_off);
  check_bool "batching is faster end-to-end" true
    (rs_on.Toolchain.rs_wall_cycles < rs_off.Toolchain.rs_wall_cycles)

(* --- promotion table: vdso-like calls never touch the transport --- *)

let vdso_program =
  {
    Toolchain.prog_name = "fabric-vdso";
    prog_main =
      (fun env ->
        let open Mv_guest in
        let libc = Libc.create env in
        let pid = ref 0 in
        for _ = 1 to 5 do
          ignore (env.Env.gettimeofday ());
          pid := env.Env.getpid ()
        done;
        Libc.printf libc "vdso pid=%d\n" !pid;
        Libc.flush_all libc);
  }

let test_vdso_local_path () =
  let rs = Toolchain.run_multiverse (Toolchain.hybridize vdso_program) in
  check_string "stdout" "vdso pid=1\n" rs.Toolchain.rs_stdout;
  let f = Runtime.fabric (runtime rs) in
  (* gettimeofday and getpid are installed with promote_after:0 — every
     one of the ten calls is a local hit, none rings a doorbell. *)
  check_bool "all vdso-like calls serviced locally" true (Fabric.local_hits f >= 10);
  check_int "no demotions for stable locals" 0 (Fabric.local_misses f);
  check_bool "transport never exceeds entry calls" true
    (Fabric.transport_calls f <= Fabric.calls f)

let suite =
  [
    ("four groups routed over the shared pool", `Quick, test_four_groups_routed);
    ("concurrent nested callers batch as riders", `Quick, test_riders_batch);
    ("batching toggle: fewer doorbells, faster", `Quick, test_batching_toggle);
    ("vdso fast path stays local", `Quick, test_vdso_local_path);
  ]
