(* Fault-injection and resilience tests: plan determinism, byte-identical
   fault traces from one seed, zero-cost-when-disabled, and graceful
   degradation (channel fallback, partner respawn) under injected faults. *)

module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Trace = Mv_engine.Trace
module Event_channel = Mv_hvm.Event_channel
module Fault_plan = Mv_faults.Fault_plan
open Multiverse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- the plan itself --- *)

let test_plan_determinism () =
  let seq p = List.init 200 (fun i -> Fault_plan.fire p Fault_plan.Chan_drop (string_of_int i)) in
  let p1 = Fault_plan.create ~seed:123 ~rate:0.3 () in
  let p2 = Fault_plan.create ~seed:123 ~rate:0.3 () in
  Alcotest.(check (list bool)) "same seed, same decisions" (seq p1) (seq p2);
  let p5 = Fault_plan.create ~seed:124 ~rate:0.3 () in
  check_bool "different seed, different decisions" true (seq p1 <> seq p5);
  (* Disabling other sites must not shift this site's stream. *)
  let seq_delay p =
    List.init 200 (fun i -> Fault_plan.fire p Fault_plan.Chan_delay (string_of_int i))
  in
  let p3 = Fault_plan.create ~seed:123 ~rate:0.3 ~sites:[ Fault_plan.Chan_delay ] () in
  let p4 = Fault_plan.create ~seed:123 ~rate:0.3 () in
  ignore (seq p4);  (* drain the drop stream; the delay stream is independent *)
  Alcotest.(check (list bool)) "per-site streams independent" (seq_delay p3) (seq_delay p4)

let test_plan_none_inert () =
  check_bool "none disabled" false (Fault_plan.enabled Fault_plan.none);
  check_bool "none never fires" false (Fault_plan.fire Fault_plan.none Fault_plan.Chan_drop "x");
  check_int "none injects nothing" 0 (Fault_plan.injected Fault_plan.none)

(* --- channel-level protocol and retry behaviour --- *)

let test_complete_protocol_error () =
  let machine = Machine.create () in
  let ch = Event_channel.create machine ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7 in
  Alcotest.check_raises "complete with nothing served"
    (Event_channel.Protocol_error "Event_channel.complete: nothing being served")
    (fun () -> Event_channel.complete ch)

let test_channel_failure_after_retries () =
  let faults = Fault_plan.create ~seed:1 ~rate:1.0 ~sites:[ Fault_plan.Chan_drop ] () in
  let machine = Machine.create () in
  Fault_plan.bind faults machine;
  let ch =
    Event_channel.create ~faults machine ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7
  in
  (* The server parks forever: every request is dropped before reaching it. *)
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"server" (fun () ->
         ignore (Event_channel.serve_next ch)));
  let outcome = ref "no outcome" in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:7 ~name:"caller" (fun () ->
         try
           Event_channel.call ch { Event_channel.req_kind = "doomed"; req_run = (fun () -> ()) };
           outcome := "completed"
         with Event_channel.Channel_failure k -> outcome := "failed:" ^ k));
  Sim.run machine.Machine.sim;
  check_string "call fails after retries exhaust" "failed:doomed" !outcome;
  check_int "bounded retries" 6 (Event_channel.retries ch);
  check_int "every attempt timed out" 7 (Event_channel.timeouts ch);
  check_int "every attempt was dropped" 7 (Fault_plan.injected_at faults Fault_plan.Chan_drop)

let test_duplicate_runs_payload_once () =
  let faults = Fault_plan.create ~seed:5 ~rate:1.0 ~sites:[ Fault_plan.Chan_duplicate ] () in
  let machine = Machine.create () in
  Fault_plan.bind faults machine;
  let ch =
    Event_channel.create ~faults machine ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7
  in
  let runs = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"server" (fun () ->
         (* Serve both deliveries: the duplicate must only re-acknowledge. *)
         let req = Event_channel.serve_next ch in
         req.Event_channel.req_run ();
         Event_channel.complete ch;
         ignore (Event_channel.serve_next ch)));
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:7 ~name:"caller" (fun () ->
         Event_channel.call ch { Event_channel.req_kind = "dup"; req_run = (fun () -> incr runs) }));
  Sim.run machine.Machine.sim;
  check_int "duplicated delivery" 1 (Fault_plan.injected_at faults Fault_plan.Chan_duplicate);
  check_int "payload ran exactly once" 1 !runs

(* --- end-to-end workload under injected faults --- *)

(* Enough iterations (and forwarded calls) to span many watchdog
   heartbeats, with deterministic output to compare against native. *)
let work_program =
  {
    Toolchain.prog_name = "fault-workload";
    prog_main =
      (fun env ->
        let open Mv_guest in
        let libc = Libc.create env in
        let addr = env.Env.mmap ~len:8192 ~prot:Mv_ros.Mm.prot_rw ~kind:"buf" in
        let acc = ref 0 in
        for i = 1 to 40 do
          env.Env.work 50_000;
          env.Env.store addr;
          ignore (env.Env.getrusage ());
          acc := !acc + i;
          if i mod 8 = 0 then Libc.printf libc "tick %d acc=%d\n" i !acc
        done;
        env.Env.munmap ~addr ~len:8192;
        Libc.printf libc "done acc=%d\n" !acc;
        Libc.flush_all libc)
  }

let expected_stdout = lazy (Toolchain.run_native work_program).Toolchain.rs_stdout

let run_with ?(sync = false) faults =
  let options =
    {
      Toolchain.default_mv_options with
      mv_channel = (if sync then Mv_hvm.Event_channel.Sync else Mv_hvm.Event_channel.Async);
      mv_faults = faults;
    }
  in
  Toolchain.run_multiverse ~trace:true ~options (Toolchain.hybridize work_program)

let runtime_of rs =
  match rs.Toolchain.rs_runtime with
  | Some rt -> rt
  | None -> Alcotest.fail "no runtime handle"

let trace_in rs category =
  List.map
    (fun r -> Printf.sprintf "%d %s" r.Trace.at r.Trace.message)
    (Trace.records_in rs.Toolchain.rs_machine.Machine.trace ~category)

let test_fault_trace_deterministic () =
  let run () = run_with (Fault_plan.create ~seed:1234 ~rate:0.08 ()) in
  let a = run () and b = run () in
  check_bool "faults were injected" true (trace_in a "fault" <> []);
  Alcotest.(check (list string)) "identical fault trace" (trace_in a "fault") (trace_in b "fault");
  Alcotest.(check (list string))
    "identical resilience trace" (trace_in a "resilience") (trace_in b "resilience");
  check_string "identical stdout" a.Toolchain.rs_stdout b.Toolchain.rs_stdout;
  check_int "identical wall cycles" a.Toolchain.rs_wall_cycles b.Toolchain.rs_wall_cycles;
  check_string "output still correct" (Lazy.force expected_stdout) a.Toolchain.rs_stdout

let test_zero_fault_plan_neutral () =
  (* A rate-0 plan arms every resilience path (timeouts, watchdog,
     errno checks) but never fires: the run must be indistinguishable
     from the fault-free runtime. *)
  let off = run_with Fault_plan.none in
  let zero = run_with (Fault_plan.create ~seed:99 ~rate:0.0 ()) in
  check_string "stdout identical" off.Toolchain.rs_stdout zero.Toolchain.rs_stdout;
  check_int "wall cycles identical" off.Toolchain.rs_wall_cycles zero.Toolchain.rs_wall_cycles;
  check_int "syscall totals identical" (Toolchain.total_syscalls off)
    (Toolchain.total_syscalls zero);
  Alcotest.(check (list string))
    "no fault or resilience records" [] (trace_in zero "fault" @ trace_in zero "resilience");
  let rt = runtime_of zero in
  check_int "nothing injected" 0 (Runtime.faults_injected rt);
  check_int "no retries" 0 (Runtime.retries rt);
  check_int "no fallbacks" 0 (Runtime.fallbacks rt);
  check_int "no respawns" 0 (Runtime.respawns rt)

let test_sync_loss_falls_back_to_async () =
  let rs =
    run_with ~sync:true (Fault_plan.create ~seed:7 ~rate:0.7 ~sites:[ Fault_plan.Chan_drop ] ())
  in
  check_string "output correct under heavy loss" (Lazy.force expected_stdout)
    rs.Toolchain.rs_stdout;
  check_int "clean exit" 0 rs.Toolchain.rs_exit_code;
  let rt = runtime_of rs in
  check_bool "retried with backoff" true (Runtime.retries rt >= 1);
  check_bool "fell back sync->async" true (Runtime.fallbacks rt >= 1)

let test_partner_kill_respawns () =
  let rs = run_with (Fault_plan.create ~seed:11 ~rate:0.5 ~sites:[ Fault_plan.Partner_kill ] ()) in
  check_string "output correct across partner deaths" (Lazy.force expected_stdout)
    rs.Toolchain.rs_stdout;
  let rt = runtime_of rs in
  check_bool "partner was killed" true
    (Fault_plan.injected_at (Runtime.fault_plan rt) Fault_plan.Partner_kill >= 1);
  check_bool "watchdog respawned it" true (Runtime.respawns rt >= 1)

let test_spurious_errno_retries () =
  let rs =
    run_with
      (Fault_plan.create ~seed:3 ~rate:0.3
         ~sites:[ Fault_plan.Syscall_eagain; Fault_plan.Syscall_enosys ]
         ())
  in
  check_string "output correct under spurious errnos" (Lazy.force expected_stdout)
    rs.Toolchain.rs_stdout;
  check_bool "forwarded syscalls retried" true (Runtime.retries (runtime_of rs) >= 1)

let test_boot_stall () =
  let faults = Fault_plan.create ~seed:2 ~rate:1.0 ~sites:[ Fault_plan.Boot_stall ] () in
  let rs = run_with faults in
  check_string "output correct after boot stall" (Lazy.force expected_stdout)
    rs.Toolchain.rs_stdout;
  check_int "boot stalled exactly once" 1 (Fault_plan.injected_at faults Fault_plan.Boot_stall)

let suite =
  [
    Alcotest.test_case "plan: deterministic per-site streams" `Quick test_plan_determinism;
    Alcotest.test_case "plan: none is inert" `Quick test_plan_none_inert;
    Alcotest.test_case "channel: complete without serve is a protocol error" `Quick
      test_complete_protocol_error;
    Alcotest.test_case "channel: bounded retries then Channel_failure" `Quick
      test_channel_failure_after_retries;
    Alcotest.test_case "channel: duplicated delivery runs payload once" `Quick
      test_duplicate_runs_payload_once;
    Alcotest.test_case "e2e: fault trace reproducible from seed" `Quick
      test_fault_trace_deterministic;
    Alcotest.test_case "e2e: zero-fault plan is cycle-neutral" `Quick test_zero_fault_plan_neutral;
    Alcotest.test_case "e2e: sync loss degrades to async" `Quick test_sync_loss_falls_back_to_async;
    Alcotest.test_case "e2e: killed partners are respawned" `Quick test_partner_kill_respawns;
    Alcotest.test_case "e2e: spurious errnos are retried" `Quick test_spurious_errno_retries;
    Alcotest.test_case "e2e: boot stall is survived" `Quick test_boot_stall;
  ]
