(* mvcheck model-checker tests: strategy semantics, FIFO-hook equivalence
   with the unhooked executor, bounded exploration finding (and shrinking)
   the seeded bugs, replay determinism, counterexample artifact round
   trips, and the golden-trace regression.

   Exploration here runs with small seed budgets so the whole tier stays
   within a few seconds under `dune runtest`; the wide sweeps are `Slow
   (CI runs them via the full tier). *)

module Machine = Mv_engine.Machine
module Exec = Mv_engine.Exec
module Sim = Mv_engine.Sim
module Strategy = Mv_check.Strategy
module Scenario = Mv_check.Scenario
module Scenarios = Mv_check.Scenarios
module Explore = Mv_check.Explore
module Golden = Mv_check.Golden

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_trace = Alcotest.(check (list int))

let scenario name =
  match Scenarios.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let outcome_msg = function Scenario.Pass -> "pass" | Scenario.Fail m -> "fail: " ^ m

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* --- strategy semantics --- *)

let test_strategy_fifo () =
  let s = Strategy.create Strategy.Fifo in
  check_int "fifo picks head" 0 (Strategy.decide s ~n:5);
  check_int "fifo picks head again" 0 (Strategy.decide s ~n:2);
  check_trace "records defaults" [ 0; 0 ] (Strategy.recorded s)

let test_strategy_replay () =
  let s = Strategy.create (Strategy.Replay [ 2; 9; 1 ]) in
  check_int "in range" 2 (Strategy.decide s ~n:3);
  check_int "out of range -> default" 0 (Strategy.decide s ~n:3);
  check_int "in range" 1 (Strategy.decide s ~n:3);
  check_int "past end -> default" 0 (Strategy.decide s ~n:3);
  check_trace "records what it played" [ 2; 0; 1; 0 ] (Strategy.recorded s)

let test_strategy_random_deterministic () =
  let seq seed =
    let s = Strategy.create (Strategy.Random seed) in
    List.init 64 (fun i -> Strategy.decide s ~n:(1 + (i mod 7)))
  in
  check_trace "same seed, same decisions" (seq 42) (seq 42);
  check_bool "different seed, different decisions" true (seq 42 <> seq 43);
  List.iteri
    (fun i c ->
      check_bool "decision in range" true (c >= 0 && c < 1 + (i mod 7)))
    (seq 42)

(* --- FIFO hook equivalence ---

   The same three-thread workload (charges crossing preemption slices,
   yields, a sleeper) must produce the identical execution — segment
   order and final virtual time — whether the executor runs its native
   FIFO path or a Strategy.Fifo hook answers every choice point. *)

let fifo_workload hooked =
  let machine = Machine.create () in
  let exec = machine.Machine.exec in
  Exec.set_cpu_params exec ~cpu:0 ~slice:(Some 15_000) ();
  if hooked then Strategy.install (Strategy.create Strategy.Fifo) exec;
  let log = ref [] in
  let logf name step = log := Printf.sprintf "%s.%d" name step :: !log in
  for t = 0 to 2 do
    let name = Printf.sprintf "worker-%d" t in
    ignore
      (Exec.spawn exec ~cpu:0 ~name (fun () ->
           for step = 0 to 3 do
             logf name step;
             Exec.charge exec 10_000;
             if step mod 2 = 0 then Exec.yield exec
           done))
  done;
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"sleeper" (fun () ->
         Exec.sleep exec 25_000;
         logf "sleeper" 0));
  Sim.run machine.Machine.sim;
  (List.rev !log, Sim.now machine.Machine.sim)

let test_fifo_hook_equivalence () =
  let log0, t0 = fifo_workload false in
  let log1, t1 = fifo_workload true in
  Alcotest.(check (list string)) "identical segment order" log0 log1;
  check_int "identical final virtual time" t0 t1

(* --- exploration: seeded bugs are found, shrunk, and replayable --- *)

let explore_cx ?(seeds = 10) name =
  let sc = scenario name in
  let r = Explore.explore ~seeds sc in
  match r.Explore.ex_counterexample with
  | Some cx -> cx
  | None -> Alcotest.failf "%s: seeded bug not found in %d runs" name r.Explore.ex_runs

let test_finds_racy_wakeup () =
  let cx = explore_cx "racy-wakeup" in
  check_bool "confirmed by replay" true cx.Explore.cx_confirmed;
  (* The stale-check consumer deadlocks iff it is picked before the
     producer at the first choice point: minimal trace [1]. *)
  check_trace "shrunk to the minimal schedule" [ 1 ] cx.Explore.cx_trace;
  check_bool "message names the stuck consumer" true
    (contains_sub cx.Explore.cx_message "consumer")

let test_finds_broken_dedup () =
  let cx = explore_cx "broken-dedup" in
  check_bool "confirmed by replay" true cx.Explore.cx_confirmed;
  check_bool "at-most-once violation reported" true
    (contains_sub cx.Explore.cx_message "at-most-once");
  (* The duplicate-delivery bug needs no schedule perturbation at all:
     the trace shrinks to pure FIFO. *)
  check_trace "schedule-independent, trace shrinks to []" [] cx.Explore.cx_trace

let test_replay_reproduces () =
  let sc = scenario "racy-wakeup" in
  let cx = explore_cx "racy-wakeup" in
  let outcome1, decisions1 = Explore.replay sc cx in
  let outcome2, decisions2 = Explore.replay sc cx in
  check_string "replay fails identically" (outcome_msg outcome1) (outcome_msg outcome2);
  check_trace "replay decides identically" decisions1 decisions2;
  check_string "replay reproduces the recorded failure"
    ("fail: " ^ cx.Explore.cx_message) (outcome_msg outcome1)

let test_artifact_roundtrip () =
  let cx = explore_cx "racy-wakeup" in
  (match Explore.of_artifact (Explore.to_artifact cx) with
  | Error msg -> Alcotest.failf "artifact did not parse: %s" msg
  | Ok cx' ->
      check_string "scenario survives" cx.Explore.cx_scenario cx'.Explore.cx_scenario;
      check_trace "trace survives" cx.Explore.cx_trace cx'.Explore.cx_trace;
      check_string "message survives" cx.Explore.cx_message cx'.Explore.cx_message;
      check_int "fault seed survives" cx.Explore.cx_fault.Explore.fc_seed
        cx'.Explore.cx_fault.Explore.fc_seed);
  (* A fault-armed counterexample exercises the sites serialization. *)
  let cx = explore_cx "broken-dedup" in
  match Explore.of_artifact (Explore.to_artifact cx) with
  | Error msg -> Alcotest.failf "fault artifact did not parse: %s" msg
  | Ok cx' ->
      check_bool "sites survive" true
        (cx.Explore.cx_fault.Explore.fc_sites = cx'.Explore.cx_fault.Explore.fc_sites);
      check_string "rate survives"
        (string_of_float cx.Explore.cx_fault.Explore.fc_rate)
        (string_of_float cx'.Explore.cx_fault.Explore.fc_rate)

let test_artifact_rejects_garbage () =
  (match Explore.of_artifact "not a counterexample" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error _ -> ());
  match Explore.of_artifact "mvcheck counterexample v1\nscenario: x\n" with
  | Ok _ -> Alcotest.fail "parsed truncated artifact"
  | Error msg -> check_bool "names the missing field" true
      (contains_sub msg "found-by")

(* --- healthy scenarios stay clean under a small sweep --- *)

let assert_clean ~seeds name () =
  let r = Explore.explore ~seeds (scenario name) in
  match r.Explore.ex_counterexample with
  | None -> ()
  | Some cx ->
      Alcotest.failf "%s: unexpected violation %S (trace %s)" name
        cx.Explore.cx_message
        (String.concat "," (List.map string_of_int cx.Explore.cx_trace))

(* --- per-core runqueues + deterministic work stealing --- *)

(* Four straight-line jobs pinned on ROS core 0 with every other ROS core
   idle.  Stealing disabled must keep every segment on core 0; stealing
   enabled must migrate work, and only within the ROS partition. *)
let steal_workload stealing =
  let machine = Machine.create ~work_stealing:stealing () in
  let exec = machine.Machine.exec in
  let ncores = Mv_hw.Topology.ncores machine.Machine.topo in
  let hrt = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let log = ref [] in
  for t = 0 to 3 do
    let name = Printf.sprintf "job-%d" t in
    ignore
      (Exec.spawn exec ~cpu:0 ~name (fun () ->
           for step = 0 to 2 do
             log :=
               (Printf.sprintf "%s.%d" name step, Exec.cpu_of (Exec.self exec))
               :: !log;
             Exec.charge exec 4_000;
             Exec.yield exec
           done))
  done;
  Sim.run machine.Machine.sim;
  let steals =
    List.fold_left ( + ) 0
      (List.init ncores (fun c -> Exec.steals exec ~cpu:c))
  in
  (List.rev !log, Sim.now machine.Machine.sim, steals, hrt)

let test_stealing_disabled_stays_put () =
  let log, _, steals, _ = steal_workload false in
  check_int "no steals when disabled" 0 steals;
  List.iter
    (fun (seg, cpu) -> check_int (seg ^ " runs on its spawn core") 0 cpu)
    log

let test_stealing_migrates_within_ros () =
  let log0, t0, _, _ = steal_workload false in
  let log1, t1, steals, hrt = steal_workload true in
  check_bool "stealing actually happened" true (steals > 0);
  check_bool "some segment migrated off core 0" true
    (List.exists (fun (_, cpu) -> cpu <> 0) log1);
  List.iter
    (fun (seg, cpu) ->
      check_bool (seg ^ " stays inside the ROS partition") true (cpu < hrt))
    log1;
  (* Same work, run exactly once each, and no slower than the serial run. *)
  let segs l = List.sort compare (List.map fst l) in
  Alcotest.(check (list string)) "identical segment multiset" (segs log0) (segs log1);
  check_bool "parallelism does not lose virtual time" true (t1 <= t0)

(* --- run_bounded --- *)

let test_run_bounded_budget () =
  let machine = Machine.create () in
  let exec = machine.Machine.exec in
  ignore
    (Exec.spawn exec ~cpu:0 ~name:"spinner" (fun () ->
         while true do
           Exec.yield exec
         done));
  check_bool "budget exhausts on a spinner" false
    (Sim.run_bounded machine.Machine.sim ~max_events:1_000);
  let machine = Machine.create () in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"one-shot" (fun () -> ()));
  check_bool "finite run quiesces" true
    (Sim.run_bounded machine.Machine.sim ~max_events:1_000)

(* --- the golden-trace regression --- *)

(* Resolved against both the test's own directory (where dune materializes
   the (deps) glob) and the cwd, so the binary also works when executed
   directly from the repo root (as CI's full-tier step does). *)
let golden_path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name)
        "golden/multiverse_default.trace";
      "golden/multiverse_default.trace";
      "test/golden/multiverse_default.trace";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_trace () =
  let expected =
    try read_file golden_path
    with Sys_error _ ->
      Alcotest.failf
        "missing %s — regenerate with: dune exec bin/mvcheck.exe -- golden > \
         test/%s" golden_path golden_path
  in
  let actual = Golden.trace_string () in
  if actual <> expected then
    Alcotest.failf
      "golden trace diverged (%d bytes, want %d).  If the change is \
       intentional, regenerate with: dune exec bin/mvcheck.exe -- golden > \
       test/%s" (String.length actual) (String.length expected) golden_path

(* The stealing machinery being compiled in must not perturb the canonical
   run: with stealing explicitly disabled, the full hybridized golden
   workload reproduces the committed trace byte-for-byte on the default
   2x4 box. *)
let test_steal_disabled_golden_trace () =
  let module Toolchain = Multiverse.Toolchain in
  let expected =
    try read_file golden_path
    with Sys_error _ -> Alcotest.failf "missing %s" golden_path
  in
  let b = Mv_workloads.Benchmarks.find Golden.benchmark in
  let prog =
    Mv_workloads.Benchmarks.program b ~n:b.Mv_workloads.Benchmarks.b_test_n
  in
  let hx = Toolchain.hybridize prog in
  let options =
    { Toolchain.default_mv_options with Toolchain.mv_work_stealing = false }
  in
  let rs = Toolchain.run_multiverse ~trace:true ~options hx in
  let actual =
    Format.asprintf "%a" Mv_engine.Trace.pp
      rs.Toolchain.rs_machine.Machine.trace
  in
  if actual <> expected then
    Alcotest.fail
      "stealing-disabled run diverged from the golden trace (per-core \
       runqueues must be inert when stealing is off)"

(* The elastic-partition surface must be invisible at the default
   geometry: an explicit singleton spec ([--partitions 1]) carves exactly
   the legacy single-HRT box, so the full hybridized golden workload
   reproduces the committed trace byte-for-byte. *)
let test_partitions_golden_trace () =
  let module Toolchain = Multiverse.Toolchain in
  let expected =
    try read_file golden_path
    with Sys_error _ -> Alcotest.failf "missing %s" golden_path
  in
  let b = Mv_workloads.Benchmarks.find Golden.benchmark in
  let prog =
    Mv_workloads.Benchmarks.program b ~n:b.Mv_workloads.Benchmarks.b_test_n
  in
  let hx = Toolchain.hybridize prog in
  let options =
    { Toolchain.default_mv_options with Toolchain.mv_partitions = Some [ 1 ] }
  in
  let rs = Toolchain.run_multiverse ~trace:true ~options hx in
  let actual =
    Format.asprintf "%a" Mv_engine.Trace.pp
      rs.Toolchain.rs_machine.Machine.trace
  in
  if actual <> expected then
    Alcotest.fail
      "partitions [1] run diverged from the golden trace (a singleton \
       partition spec must be byte-identical to the legacy single-HRT \
       geometry)"

let suite =
  [
    ("strategy: fifo decides 0", `Quick, test_strategy_fifo);
    ("strategy: replay clamps and defaults", `Quick, test_strategy_replay);
    ("strategy: random is seed-deterministic", `Quick, test_strategy_random_deterministic);
    ("fifo hook == unhooked executor", `Quick, test_fifo_hook_equivalence);
    ("sim: run_bounded budget", `Quick, test_run_bounded_budget);
    ("explore: finds + shrinks racy-wakeup to [1]", `Quick, test_finds_racy_wakeup);
    ("explore: finds broken-dedup via fault plan", `Quick, test_finds_broken_dedup);
    ("explore: replay reproduces exactly", `Quick, test_replay_reproduces);
    ("counterexample artifact round-trips", `Quick, test_artifact_roundtrip);
    ("counterexample artifact rejects garbage", `Quick, test_artifact_rejects_garbage);
    ("ping-pong-async clean (small sweep)", `Quick, assert_clean ~seeds:3 "ping-pong-async");
    ("ping-pong-sync clean (small sweep)", `Quick, assert_clean ~seeds:3 "ping-pong-sync");
    ("fabric-batch clean (small sweep)", `Quick, assert_clean ~seeds:3 "fabric-batch");
    ("fabric-degrade clean (small sweep)", `Quick, assert_clean ~seeds:3 "fabric-degrade");
    ("boot-handshake clean (small sweep)", `Quick, assert_clean ~seeds:2 "boot-handshake");
    ("group-respawn clean (small sweep)", `Quick, assert_clean ~seeds:2 "group-respawn");
    ("merge-fault clean (small sweep)", `Quick, assert_clean ~seeds:2 "merge-fault");
    ("multi-group clean (small sweep)", `Quick, assert_clean ~seeds:2 "multi-group");
    ("golden trace: byte-identical", `Quick, test_golden_trace);
    ("work stealing: disabled stays on its core", `Quick, test_stealing_disabled_stays_put);
    ("work stealing: migrates within the ROS partition", `Quick, test_stealing_migrates_within_ros);
    ("work stealing: disabled reproduces the golden trace", `Quick, test_steal_disabled_golden_trace);
    ("partitions [1] reproduces the golden trace", `Quick, test_partitions_golden_trace);
    ("work-steal clean (small sweep)", `Quick, assert_clean ~seeds:2 "work-steal");
    ("ping-pong-async clean (wide sweep)", `Slow, assert_clean ~seeds:25 "ping-pong-async");
    ("fabric-batch clean (wide sweep)", `Slow, assert_clean ~seeds:15 "fabric-batch");
    ("fabric-degrade clean (wide sweep)", `Slow, assert_clean ~seeds:15 "fabric-degrade");
    ("boot-handshake clean (wide sweep)", `Slow, assert_clean ~seeds:15 "boot-handshake");
    ("group-respawn clean (wide sweep)", `Slow, assert_clean ~seeds:15 "group-respawn");
    ("merge-fault clean (wide sweep)", `Slow, assert_clean ~seeds:15 "merge-fault");
    ("multi-group clean (wide sweep)", `Slow, assert_clean ~seeds:10 "multi-group");
    ("work-steal clean (wide sweep)", `Slow, assert_clean ~seeds:15 "work-steal");
  ]
