(* Tests for the discrete-event engine: event queue ordering, virtual
   clock, fibers, and the per-CPU executor's virtual-time semantics. *)

open Mv_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Event_queue --- *)

let test_eq_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair int string))))
    "pops in time order"
    [ Some (10, "a"); Some (20, "b"); Some (30, "c") ]
    order

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5 i
  done;
  let popped = List.init 10 (fun _ -> match Event_queue.pop q with
    | Some (_, v) -> v
    | None -> -1)
  in
  Alcotest.(check (list int)) "ties pop in insertion order" (List.init 10 Fun.id) popped

let test_eq_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:10 1;
  Event_queue.push q ~time:5 0;
  (match Event_queue.pop q with
  | Some (5, 0) -> ()
  | _ -> Alcotest.fail "expected (5,0)");
  Event_queue.push q ~time:7 2;
  (match Event_queue.pop q with
  | Some (7, 2) -> ()
  | _ -> Alcotest.fail "expected (7,2)");
  check_int "size" 1 (Event_queue.size q)

let qcheck_eq_sorted =
  QCheck.Test.make ~name:"event queue pops sorted by time"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* --- Sim --- *)

let test_sim_clock () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.schedule_at sim 100 (fun () -> seen := (100, Sim.now sim) :: !seen);
  Sim.schedule_at sim 50 (fun () ->
      seen := (50, Sim.now sim) :: !seen;
      Sim.schedule_after sim 25 (fun () -> seen := (75, Sim.now sim) :: !seen));
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "clock equals event time" [ (50, 50); (75, 75); (100, 100) ] (List.rev !seen)

let test_sim_no_past () =
  let sim = Sim.create () in
  Sim.schedule_at sim 10 (fun () ->
      Alcotest.check_raises "no scheduling in the past"
        (Invalid_argument "Sim.schedule_at: time 5 is before now 10") (fun () ->
          Sim.schedule_at sim 5 ignore));
  Sim.run sim

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule_at sim 10 (fun () -> incr fired);
  Sim.schedule_at sim 100 (fun () -> incr fired);
  Sim.run_until sim 50;
  check_int "one event before limit" 1 !fired;
  check_int "clock at limit" 50 (Sim.now sim);
  Sim.run sim;
  check_int "rest after resume" 2 !fired

(* --- Fiber --- *)

let test_fiber_suspend_resume () =
  let stash = ref None in
  let result = ref 0 in
  Fiber.run (fun () ->
      let v = Fiber.suspend (fun r -> stash := Some r) in
      result := v + 1);
  check_int "not resumed yet" 0 !result;
  (match !stash with
  | Some r -> Fiber.resume r 41
  | None -> Alcotest.fail "no resumer");
  check_int "resumed with value" 42 !result

let test_fiber_cancel () =
  let stash = ref None in
  let cleaned = ref false in
  Fiber.run (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () -> Fiber.suspend (fun r -> stash := Some r)));
  (match !stash with
  | Some r -> Fiber.cancel r Fiber.Cancelled
  | None -> Alcotest.fail "no resumer");
  check_bool "finalizer ran on cancel" true !cleaned

let test_fiber_double_resume () =
  let stash = ref None in
  Fiber.run (fun () -> Fiber.suspend (fun r -> stash := Some r));
  let r = Option.get !stash in
  Fiber.resume r ();
  Alcotest.check_raises "second resume rejected" (Failure "Fiber: resumer used twice")
    (fun () -> Fiber.resume r ())

(* --- Exec --- *)

let test_exec_charge_advances_time () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  let finish_time = ref 0 in
  let th =
    Exec.spawn ex ~cpu:0 ~name:"worker" (fun () ->
        Exec.charge ex 1000;
        Exec.charge ex 500;
        finish_time := Exec.local_now ex)
  in
  Sim.run sim;
  check_int "local time advanced by charges" 1500 !finish_time;
  check_int "thread cpu time" 1500 (Exec.cpu_time th)

let test_exec_serializes_one_cpu () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  let spans = ref [] in
  let worker name () =
    let start = Exec.local_now ex in
    Exec.charge ex 1000;
    spans := (name, start, Exec.local_now ex) :: !spans
  in
  ignore (Exec.spawn ex ~cpu:0 ~name:"a" (worker "a"));
  ignore (Exec.spawn ex ~cpu:0 ~name:"b" (worker "b"));
  Sim.run sim;
  match List.rev !spans with
  | [ ("a", s1, e1); ("b", s2, e2) ] ->
      check_int "a starts at 0" 0 s1;
      check_int "a runs 1000" 1000 e1;
      check_bool "b starts after a ends" true (s2 >= e1);
      check_int "b runs 1000" 1000 (e2 - s2)
  | _ -> Alcotest.fail "expected two spans"

let test_exec_parallel_cpus () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:2 in
  let ends = ref [] in
  let worker () =
    Exec.charge ex 1000;
    ends := Exec.local_now ex :: !ends
  in
  ignore (Exec.spawn ex ~cpu:0 ~name:"a" worker);
  ignore (Exec.spawn ex ~cpu:1 ~name:"b" worker);
  Sim.run sim;
  Alcotest.(check (list int)) "both finish at 1000 (true parallelism)" [ 1000; 1000 ] !ends

let test_exec_block_wake () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:2 in
  let waker = ref None in
  let got = ref 0 in
  let woke_at = ref 0 in
  ignore
    (Exec.spawn ex ~cpu:0 ~name:"sleeper" (fun () ->
         Exec.charge ex 100;
         let v = Exec.block ex ~reason:"wait" (fun ~now:_ ~wake -> waker := Some wake) in
         got := v;
         woke_at := Exec.local_now ex));
  ignore
    (Exec.spawn ex ~cpu:1 ~name:"waker" (fun () ->
         Exec.charge ex 5000;
         (Option.get !waker) 7));
  Sim.run sim;
  check_int "woken with value" 7 !got;
  check_bool "resumed no earlier than waker time" true (!woke_at >= 5000)

let test_exec_wake_respects_block_time () =
  (* A thread that blocks at t=5000 must not resume before 5000 even if the
     wake arrives (virtually) earlier. *)
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:2 in
  let waker = ref None in
  let woke_at = ref 0 in
  ignore
    (Exec.spawn ex ~cpu:0 ~name:"busy-then-wait" (fun () ->
         Exec.charge ex 5000;
         let () = Exec.block ex ~reason:"wait" (fun ~now:_ ~wake -> waker := Some wake) in
         woke_at := Exec.local_now ex));
  ignore
    (Exec.spawn ex ~cpu:1 ~name:"early-waker" (fun () ->
         Exec.charge ex 200;
         match !waker with
         | Some wake -> wake ()
         | None ->
             (* The other thread has not blocked yet in host order; wait for
                it via a timed retry. *)
             Exec.sleep ex 10_000;
             (Option.get !waker) ()));
  Sim.run sim;
  check_bool "no resume before block time" true (!woke_at >= 5000)

let test_exec_sleep () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  let woke = ref 0 in
  ignore
    (Exec.spawn ex ~cpu:0 ~name:"sleeper" (fun () ->
         Exec.charge ex 100;
         Exec.sleep ex 1000;
         woke := Exec.local_now ex));
  Sim.run sim;
  check_int "sleep duration" 1100 !woke

let test_exec_join () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:2 in
  let child_done = ref 0 in
  let join_done = ref 0 in
  let child =
    Exec.spawn ex ~cpu:1 ~name:"child" (fun () ->
        Exec.charge ex 3000;
        child_done := Exec.local_now ex)
  in
  ignore
    (Exec.spawn ex ~cpu:0 ~name:"parent" (fun () ->
         Exec.charge ex 10;
         Exec.join ex child;
         join_done := Exec.local_now ex));
  Sim.run sim;
  check_int "child ran" 3000 !child_done;
  check_bool "join returned after child" true (!join_done >= 3000)

let test_exec_switch_cost_and_counts () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  Exec.set_cpu_params ex ~cpu:0 ~switch_cost:100 ();
  let last_end = ref 0 in
  let mk name =
    Exec.spawn ex ~cpu:0 ~name (fun () ->
        Exec.charge ex 1000;
        last_end := Exec.local_now ex)
  in
  ignore (mk "a");
  ignore (mk "b");
  ignore (mk "c");
  Sim.run sim;
  check_int "two switches" 2 (Exec.cpu_switches ex ~cpu:0);
  (* a: [0,1000); b: [1100,2100); c: [2200,3200) *)
  check_int "switch cost paid" 3200 !last_end

let test_exec_preemption () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  Exec.set_cpu_params ex ~cpu:0 ~slice:(Some 1000) ();
  let finish = ref [] in
  let worker name () =
    (* 5 x 400 cycles; slice 1000 forces preemption while the peer queues. *)
    for _ = 1 to 5 do
      Exec.charge ex 400
    done;
    finish := name :: !finish
  in
  let a = Exec.spawn ex ~cpu:0 ~name:"a" (worker "a") in
  let b = Exec.spawn ex ~cpu:0 ~name:"b" (worker "b") in
  Sim.run sim;
  check_bool "both finished" true (List.length !finish = 2);
  check_bool "preemptions recorded" true
    (Exec.involuntary_switches a + Exec.involuntary_switches b > 0)

let test_exec_kill_blocked () =
  let sim = Sim.create () in
  let ex = Exec.create sim ~ncpus:1 in
  let cleaned = ref false in
  let victim =
    Exec.spawn ex ~cpu:0 ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Exec.block ex ~reason:"forever" (fun ~now:_ ~wake:_ -> ())))
  in
  ignore
    (Exec.spawn ex ~cpu:0 ~name:"killer" (fun () ->
         Exec.charge ex 500;
         Exec.kill ex victim));
  Sim.run sim;
  check_bool "victim unwound" true !cleaned;
  check_bool "victim finished" true (Exec.state ex victim = Exec.Finished)

(* --- Trace retention --- *)

let trace_msgs t = List.map (fun r -> r.Trace.message) (Trace.records t)

let test_trace_ring_retention () =
  let t = Trace.create ~enabled:true ~limit:3 () in
  Alcotest.(check (option int)) "limit accessor" (Some 3) (Trace.limit t);
  for i = 1 to 5 do
    Trace.emit t ~at:i ~category:(if i mod 2 = 0 then "even" else "odd") (string_of_int i)
  done;
  Alcotest.(check (list string)) "ring keeps the newest 3, oldest first"
    [ "3"; "4"; "5" ] (trace_msgs t);
  check_int "evictions counted" 2 (Trace.dropped t);
  check_int "count_in scans the window" 1 (Trace.count_in t ~category:"even");
  Alcotest.(check (list string)) "records_in filters the window"
    [ "3"; "5" ]
    (List.map (fun r -> r.Trace.message) (Trace.records_in t ~category:"odd"));
  let seen = ref [] in
  Trace.iter t (fun r -> seen := r.Trace.message :: !seen);
  Alcotest.(check (list string)) "iter agrees with records" [ "3"; "4"; "5" ]
    (List.rev !seen);
  Trace.clear t;
  check_int "clear resets dropped" 0 (Trace.dropped t);
  Alcotest.(check (list string)) "clear empties the window" [] (trace_msgs t)

let test_trace_ring_zero_streams () =
  let t = Trace.create ~enabled:true ~limit:0 () in
  let streamed = ref [] in
  Trace.set_event_sink t (Some (fun r -> streamed := r.Trace.message :: !streamed));
  for i = 1 to 4 do
    Trace.emit t ~at:i ~category:"c" (string_of_int i)
  done;
  Alcotest.(check (list string)) "nothing retained" [] (trace_msgs t);
  check_int "all evicted" 4 (Trace.dropped t);
  Alcotest.(check (list string)) "every record streamed to the sink"
    [ "1"; "2"; "3"; "4" ] (List.rev !streamed)

let test_trace_records_memoized () =
  let t = Trace.create ~enabled:true () in
  Trace.emit t ~at:1 ~category:"c" "a";
  Trace.emit t ~at:2 ~category:"c" "b";
  check_bool "repeat calls share the memoized list" true
    (Trace.records t == Trace.records t);
  Trace.emit t ~at:3 ~category:"c" "c";
  Alcotest.(check (list string)) "emit invalidates the memo" [ "a"; "b"; "c" ]
    (trace_msgs t);
  check_bool "unbounded mode reports no limit" true (Trace.limit t = None);
  check_int "unbounded mode never drops" 0 (Trace.dropped t)

let suite =
  [
    ("event-queue: time order", `Quick, test_eq_order);
    ("event-queue: FIFO on ties", `Quick, test_eq_fifo_ties);
    ("event-queue: interleaved push/pop", `Quick, test_eq_interleaved);
    QCheck_alcotest.to_alcotest qcheck_eq_sorted;
    ("sim: clock tracks events", `Quick, test_sim_clock);
    ("sim: rejects past scheduling", `Quick, test_sim_no_past);
    ("sim: run_until", `Quick, test_sim_run_until);
    ("fiber: suspend/resume", `Quick, test_fiber_suspend_resume);
    ("fiber: cancel unwinds", `Quick, test_fiber_cancel);
    ("fiber: double resume rejected", `Quick, test_fiber_double_resume);
    ("exec: charge advances local time", `Quick, test_exec_charge_advances_time);
    ("exec: one cpu serializes", `Quick, test_exec_serializes_one_cpu);
    ("exec: two cpus run in parallel", `Quick, test_exec_parallel_cpus);
    ("exec: block/wake with value", `Quick, test_exec_block_wake);
    ("exec: wake respects block time", `Quick, test_exec_wake_respects_block_time);
    ("exec: sleep", `Quick, test_exec_sleep);
    ("exec: join", `Quick, test_exec_join);
    ("exec: switch cost and counts", `Quick, test_exec_switch_cost_and_counts);
    ("exec: slice preemption", `Quick, test_exec_preemption);
    ("exec: kill blocked thread", `Quick, test_exec_kill_blocked);
    ("trace: ring retention keeps newest N", `Quick, test_trace_ring_retention);
    ("trace: limit 0 streams without retaining", `Quick, test_trace_ring_zero_streams);
    ("trace: records memoized until next emit", `Quick, test_trace_records_memoized);
  ]
