let () =
  Alcotest.run "multiverse"
    [
      ("util", Test_util.suite);
      ("engine", Test_engine.suite);
      ("ros", Test_ros.suite);
      ("hw", Test_hw.suite);
      ("hvm-aerokernel", Test_hvm.suite);
      ("faults", Test_faults.suite);
      ("toolchain", Test_toolchain.suite);
      ("multiverse", Test_multiverse.suite);
      ("fabric", Test_fabric.suite);
      ("racket", Test_racket.suite);
      ("workloads", Test_workloads.suite);
      ("parallel", Test_parallel.suite);
      ("vcode", Test_vcode.suite);
      ("check", Test_check.suite);
      ("host-par", Test_host_par.suite);
      ("obs", Test_obs.suite);
      ("props", Test_props.suite);
    ]
