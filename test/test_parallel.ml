(* Tests for the parallel runtime substrate (worker pools over Linux
   futexes vs AeroKernel threads) and the HPCG solver. *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
open Mv_parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_linux_proc f =
  let machine = Machine.create () in
  let k = Mv_ros.Kernel.create machine in
  let out = ref None in
  let p =
    Mv_ros.Kernel.spawn_process k ~name:"pool" (fun p ->
        let env = Mv_guest.Env.native k p in
        out := Some (f machine env))
  in
  Sim.run machine.Machine.sim;
  ignore p;
  match !out with Some r -> r | None -> Alcotest.fail "body did not run"

let in_hrt ?(hrt_cores = 5) f =
  let machine = Machine.create ~hrt_cores () in
  let nk = Mv_aerokernel.Nautilus.create machine in
  let out = ref None in
  let master = List.hd (Mv_aerokernel.Nautilus.cores nk) in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:master ~name:"master" (fun () ->
         Mv_aerokernel.Nautilus.boot nk;
         out := Some (f machine nk)));
  Sim.run machine.Machine.sim;
  match !out with Some r -> r | None -> Alcotest.fail "body did not run"

let test_pool_covers_range () =
  in_linux_proc (fun _machine env ->
      let pool = Pool.create (Pool.Linux env) ~nworkers:4 in
      let hits = Array.make 1000 0 in
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Pool.shutdown pool;
      check_bool "every index exactly once" true (Array.for_all (( = ) 1) hits))

let test_pool_uneven_ranges () =
  in_linux_proc (fun _machine env ->
      let pool = Pool.create (Pool.Linux env) ~nworkers:3 in
      (* Ranges that do not divide evenly, including tiny and empty. *)
      List.iter
        (fun (lo, hi) ->
          let count = ref 0 in
          Pool.parallel_for pool ~lo ~hi (fun _ -> incr count);
          check_int (Printf.sprintf "range [%d,%d)" lo hi) (max 0 (hi - lo)) !count)
        [ (0, 7); (5, 6); (3, 3); (0, 100) ];
      Pool.shutdown pool)

let test_pool_reduce () =
  in_linux_proc (fun _machine env ->
      let pool = Pool.create (Pool.Linux env) ~nworkers:4 in
      let sum = Pool.parallel_reduce pool ~lo:1 ~hi:101 float_of_int in
      Pool.shutdown pool;
      Alcotest.(check (float 1e-9)) "sum 1..100" 5050.0 sum)

let test_pool_many_regions () =
  in_linux_proc (fun _machine env ->
      let pool = Pool.create (Pool.Linux env) ~nworkers:2 in
      let total = ref 0 in
      for _ = 1 to 50 do
        Pool.parallel_for pool ~lo:0 ~hi:10 (fun _ -> incr total)
      done;
      check_int "regions counted" 50 (Pool.regions pool);
      Pool.shutdown pool;
      check_int "all iterations" 500 !total)

let test_pool_futex_traffic () =
  in_linux_proc (fun _machine env ->
      let pool = Pool.create (Pool.Linux env) ~nworkers:4 in
      for _ = 1 to 10 do
        Pool.parallel_for pool ~lo:0 ~hi:8 (fun _ -> ())
      done;
      Pool.shutdown pool;
      (* Persistent Linux workers park on futexes: kernel-visible traffic. *)
      let futexes =
        Mv_util.Histogram.count env.Mv_guest.Env.proc.Mv_ros.Process.syscall_counts "futex"
      in
      check_bool (Printf.sprintf "futex syscalls (%d)" futexes) true (futexes > 40))

let test_pool_aerokernel_backend () =
  in_hrt (fun _machine nk ->
      let pool = Pool.create (Pool.Aerokernel nk) ~nworkers:4 in
      let sum = Pool.parallel_reduce pool ~lo:0 ~hi:1000 float_of_int in
      Pool.shutdown pool;
      Alcotest.(check (float 1e-9)) "reduce on HRT cores" 499500.0 sum)

let test_pool_parallelism_real () =
  (* Wall-clock on 4 workers must be well under 4x one worker's work. *)
  let wall workers =
    in_linux_proc (fun machine env ->
        let pool = Pool.create (Pool.Linux env) ~nworkers:workers in
        let t0 = Exec.local_now machine.Machine.exec in
        Pool.parallel_for pool ~lo:0 ~hi:400 (fun _ -> Pool.charge pool 10_000);
        let t = Exec.local_now machine.Machine.exec - t0 in
        Pool.shutdown pool;
        t)
  in
  let w1 = wall 1 and w4 = wall 4 in
  check_bool
    (Printf.sprintf "speedup %.2f > 2.5" (float_of_int w1 /. float_of_int w4))
    true
    (float_of_int w1 > 2.5 *. float_of_int w4)

let test_hpcg_converges_both_backends () =
  let r_linux =
    in_linux_proc (fun _machine env ->
        let pool = Pool.create (Pool.Linux env) ~nworkers:4 in
        let r = Hpcg.run pool ~nx:8 () in
        Pool.shutdown pool;
        r)
  in
  let r_hrt =
    in_hrt (fun _machine nk ->
        let pool = Pool.create (Pool.Aerokernel nk) ~nworkers:4 in
        let r = Hpcg.run pool ~nx:8 () in
        Pool.shutdown pool;
        r)
  in
  check_bool "linux converged" true (Hpcg.verify r_linux);
  check_bool "hrt converged" true (Hpcg.verify r_hrt);
  check_int "same iteration count (deterministic numerics)" r_linux.Hpcg.iterations
    r_hrt.Hpcg.iterations;
  check_bool "nontrivial iteration count" true (r_linux.Hpcg.iterations >= 8)

let test_hpcg_hrt_faster_fine_grained () =
  (* The paper's prior-work claim: HRT-native parallel runtimes beat Linux
     when region granularity is fine (thread primitives dominate). *)
  let t_linux =
    in_linux_proc (fun machine env ->
        let pool = Pool.create (Pool.Linux env) ~nworkers:4 in
        let t0 = Exec.local_now machine.Machine.exec in
        ignore (Hpcg.run pool ~nx:8 ());
        let t = Exec.local_now machine.Machine.exec - t0 in
        Pool.shutdown pool;
        t)
  in
  let t_hrt =
    in_hrt (fun machine nk ->
        let pool = Pool.create (Pool.Aerokernel nk) ~nworkers:4 in
        let t0 = Exec.local_now machine.Machine.exec in
        ignore (Hpcg.run pool ~nx:8 ());
        let t = Exec.local_now machine.Machine.exec - t0 in
        Pool.shutdown pool;
        t)
  in
  check_bool
    (Printf.sprintf "hrt %.2fx faster" (float_of_int t_linux /. float_of_int t_hrt))
    true (t_hrt < t_linux)

let suite =
  [
    ("pool: covers the range exactly once", `Quick, test_pool_covers_range);
    ("pool: uneven/empty ranges", `Quick, test_pool_uneven_ranges);
    ("pool: parallel reduce", `Quick, test_pool_reduce);
    ("pool: many regions, persistent workers", `Quick, test_pool_many_regions);
    ("pool: Linux backend parks on futexes", `Quick, test_pool_futex_traffic);
    ("pool: AeroKernel backend", `Quick, test_pool_aerokernel_backend);
    ("pool: real parallel speedup", `Quick, test_pool_parallelism_real);
    ("hpcg: converges on both backends", `Quick, test_hpcg_converges_both_backends);
    ("hpcg: HRT-native faster at fine grain", `Quick, test_hpcg_hrt_faster_fine_grained);
  ]
