(* Tests for the Benchmarks Game workloads: reference outputs (several are
   published constants of the benchmark suite), cross-mode behavioural
   equivalence, and the system-utilization characteristics behind
   Figures 10-12. *)

module H = Mv_util.Histogram
open Multiverse
open Mv_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run_native ?n b =
  let n = match n with Some n -> n | None -> b.Benchmarks.b_test_n in
  Toolchain.run_native (Benchmarks.program b ~n)

let test_binary_tree_output () =
  let rs = run_native (Benchmarks.find "binary-tree-2") in
  check_string "reference output"
    "stretch tree of depth 7\t check: -1\n\
     128\t trees of depth 4\t check: -128\n\
     32\t trees of depth 6\t check: -32\n\
     long lived tree of depth 6\t check: -1\n"
    rs.Toolchain.rs_stdout

let test_fannkuch_output () =
  (* Published reference: for n=6 the checksum is 49 and the maximum flip
     count is 10; for n=7 they are 228 and 16. *)
  let rs = run_native (Benchmarks.find "fannkuch-redux") in
  check_string "n=6" "49\nPfannkuchen(6) = 10\n" rs.Toolchain.rs_stdout;
  let rs7 = run_native ~n:7 (Benchmarks.find "fannkuch-redux") in
  check_string "n=7" "228\nPfannkuchen(7) = 16\n" rs7.Toolchain.rs_stdout

let test_nbody_output () =
  (* Published reference for n=1000 steps: -0.169075164 / -0.169086185.
     At our test size (100 steps) the initial energy is the same known
     constant. *)
  let rs = run_native (Benchmarks.find "n-body") in
  let lines = String.split_on_char '\n' rs.Toolchain.rs_stdout in
  (match lines with
  | first :: _ -> check_string "initial energy (published)" "-0.169075164" first
  | [] -> Alcotest.fail "no output");
  let rs1000 = run_native ~n:1000 (Benchmarks.find "n-body") in
  check_string "advanced energy at 1000 steps (published)"
    "-0.169075164\n-0.169087605\n" rs1000.Toolchain.rs_stdout

let test_spectral_norm_output () =
  (* Published reference: 1.274219991 for n=100. *)
  let rs = run_native ~n:100 (Benchmarks.find "spectral-norm") in
  check_string "spectral norm n=100" "1.274219991\n" rs.Toolchain.rs_stdout

let test_fasta_outputs_match () =
  (* fasta and fasta-3 are two implementations of the same specification:
     byte-identical output required. *)
  let out1 = (run_native (Benchmarks.find "fasta")).Toolchain.rs_stdout in
  let out3 = (run_native (Benchmarks.find "fasta-3")).Toolchain.rs_stdout in
  check_string "fasta = fasta-3" out1 out3;
  check_bool "header present" true
    (String.length out1 > 22 && String.sub out1 0 22 = ">ONE Homo sapiens alu\n")

let test_fasta_deterministic_lcg () =
  (* The benchmark's LCG (seed 42, IM 139968) makes the random sections
     deterministic; this prefix is from the published n=1000 output. *)
  let rs = run_native (Benchmarks.find "fasta") in
  let lines = String.split_on_char '\n' rs.Toolchain.rs_stdout in
  let rec drop_until = function
    | [] -> []
    | l :: _ as rest when l = ">TWO IUB ambiguity codes" -> rest
    | _ :: rest -> drop_until rest
  in
  let two = drop_until lines in
  match two with
  | _ :: first_random :: _ ->
      check_string "first random line"
        "cttBtatcatatgctaKggNcataaaSatgtaaaDcDRtBggDtctttataattcBgtcg" first_random
  | _ -> Alcotest.fail "missing TWO section"

let test_mandelbrot_output () =
  let rs = run_native (Benchmarks.find "mandelbrot-2") in
  let out = rs.Toolchain.rs_stdout in
  check_bool "P4 header" true (String.length out > 9 && String.sub out 0 9 = "P4\n16 16\n");
  (* 16x16 pixels, 2 bytes per row after the header. *)
  check_int "bitmap size" (9 + 32) (String.length out)

let test_gc_heavy_profile () =
  (* binary-tree-2's syscalls are dominated by GC and timer support
     (Figure 12): mmap/munmap/mprotect + rt_sigreturn + gettimeofday. *)
  let rs = run_native ~n:12 (Benchmarks.find "binary-tree-2") in
  let c name = H.count rs.Toolchain.rs_syscalls name in
  check_bool "munmap heavy" true (c "munmap" > 10);
  check_bool "mmap heavy" true (c "mmap" > 20);
  check_bool "mprotect traffic" true (c "mprotect" > 30);
  check_bool "barrier sigreturns" true (c "rt_sigreturn" > 20);
  check_bool "timer chatter" true (c "gettimeofday" > 100);
  (* With transparent 2M promotion a single fault populates a whole 512-page
     chunk, so count demand-paged 4K-equivalents rather than raw faults. *)
  let ru = rs.Toolchain.rs_rusage in
  let pages_demand_paged =
    ru.Mv_ros.Rusage.minflt
    + (Mv_hw.Addr.pages_per_2m - 1) * ru.Mv_ros.Rusage.huge_promotions
  in
  check_bool "plenty of demand paging" true (pages_demand_paged > 5000);
  check_bool "GC heap promoted to huge pages" true
    (ru.Mv_ros.Rusage.huge_promotions > 0)

let test_fasta_write_profile () =
  (* fasta is output-bound: write dominates the syscall mix (Figure 10's
     29989 syscalls for fasta are mostly writes). *)
  let rs = run_native ~n:2000 (Benchmarks.find "fasta") in
  let writes = H.count rs.Toolchain.rs_syscalls "write" in
  let out_bytes = String.length rs.Toolchain.rs_stdout in
  check_bool "output volume" true (out_bytes > 20_000);
  (* One write per 4 KiB stdio buffer. *)
  check_bool "writes scale with output" true (writes >= out_bytes / 4096);
  (* And far more writes than a compute-bound benchmark issues. *)
  let rs_fk = run_native (Benchmarks.find "fannkuch-redux") in
  check_bool "more writes than fannkuch" true
    (writes > H.count rs_fk.Toolchain.rs_syscalls "write")

let test_multiverse_equivalence_small () =
  (* The hybridized runtime must behave identically on a full benchmark:
     the headline claim of the paper, end to end. *)
  List.iter
    (fun name ->
      let b = Benchmarks.find name in
      let prog = Benchmarks.program b ~n:b.Benchmarks.b_test_n in
      let rs_n = Toolchain.run_native prog in
      let rs_m = Toolchain.run_multiverse (Toolchain.hybridize prog) in
      check_string (name ^ " output identical") rs_n.Toolchain.rs_stdout
        rs_m.Toolchain.rs_stdout;
      check_bool (name ^ " multiverse slower") true
        (rs_m.Toolchain.rs_wall_cycles > rs_n.Toolchain.rs_wall_cycles))
    [ "binary-tree-2"; "fannkuch-redux" ]

let test_runtime_ordering () =
  (* Figure 13's ordering for a GC-heavy benchmark: native <= virtual <
     multiverse. *)
  let b = Benchmarks.find "binary-tree-2" in
  let prog = Benchmarks.program b ~n:8 in
  let w_n = (Toolchain.run_native prog).Toolchain.rs_wall_cycles in
  let w_v = (Toolchain.run_virtual prog).Toolchain.rs_wall_cycles in
  let w_m = (Toolchain.run_multiverse (Toolchain.hybridize prog)).Toolchain.rs_wall_cycles in
  check_bool "native <= virtual" true (w_n <= w_v);
  check_bool "virtual < multiverse" true (w_v < w_m)

let test_determinism () =
  (* The whole simulation is deterministic: two runs of the same workload
     agree cycle-for-cycle in every mode. *)
  let b = Benchmarks.find "n-body" in
  let prog = Benchmarks.program b ~n:200 in
  let n1 = Toolchain.run_native prog and n2 = Toolchain.run_native prog in
  check_int "native cycles identical" n1.Toolchain.rs_wall_cycles n2.Toolchain.rs_wall_cycles;
  check_string "native stdout identical" n1.Toolchain.rs_stdout n2.Toolchain.rs_stdout;
  let hx = Toolchain.hybridize prog in
  let m1 = Toolchain.run_multiverse hx and m2 = Toolchain.run_multiverse hx in
  check_int "multiverse cycles identical" m1.Toolchain.rs_wall_cycles m2.Toolchain.rs_wall_cycles

(* --- the open-loop fabric load generator --- *)

let lg_small =
  {
    Loadgen.default_config with
    Loadgen.lg_groups = 40;
    lg_calls_per_group = 3;
    lg_offered_cps = 40_000.0;
  }

let test_loadgen_smoke () =
  (* Uncontended, admission off: every issued call completes, nothing is
     dropped, and the latency recorder saw every completion. *)
  let r = Loadgen.run lg_small in
  check_int "issued" (40 * 3) r.Loadgen.r_issued;
  check_int "completed = issued" r.Loadgen.r_issued r.Loadgen.r_completed;
  check_int "dropped" 0 r.Loadgen.r_dropped;
  check_bool "throughput positive" true (r.Loadgen.r_throughput_cps > 0.0);
  check_bool "p50 <= p99" true (r.Loadgen.r_p50_us <= r.Loadgen.r_p99_us);
  check_int "no sheds without admission" 0 r.Loadgen.r_sheds

let test_loadgen_overload_sheds () =
  (* Far past the knee with a starved token bucket: the admission gate
     must shed, every issued call must still be accounted for (completed
     or dropped), and the run must quiesce (Sim.run returning at all). *)
  let ad = Mv_hvm.Fabric.make_admission ~rate:1e-6 ~burst:1 ~shed_retries:1 () in
  let r =
    Loadgen.run
      {
        lg_small with
        Loadgen.lg_offered_cps = 4_000_000.0;
        lg_admission = Some ad;
      }
  in
  check_int "issued all accounted" r.Loadgen.r_issued
    (r.Loadgen.r_completed + r.Loadgen.r_dropped);
  check_bool "sheds occurred" true (r.Loadgen.r_sheds > 0);
  check_bool "drops occurred" true (r.Loadgen.r_dropped > 0)

let test_loadgen_bursty_deterministic () =
  (* The generator is part of the simulation: identical configs agree on
     every field, including the bursty schedule. *)
  let cfg = { lg_small with Loadgen.lg_arrival = Loadgen.Bursty } in
  let a = Loadgen.run cfg and b = Loadgen.run cfg in
  check_int "completed identical" a.Loadgen.r_completed b.Loadgen.r_completed;
  check_int "makespan identical" a.Loadgen.r_makespan b.Loadgen.r_makespan;
  check_bool "p99 identical" true (a.Loadgen.r_p99_us = b.Loadgen.r_p99_us)

let suite =
  [
    ("binary-tree-2: reference output", `Quick, test_binary_tree_output);
    ("fannkuch-redux: published values", `Quick, test_fannkuch_output);
    ("n-body: published energies", `Quick, test_nbody_output);
    ("spectral-norm: published value", `Slow, test_spectral_norm_output);
    ("fasta vs fasta-3: identical output", `Quick, test_fasta_outputs_match);
    ("fasta: deterministic LCG sequence", `Quick, test_fasta_deterministic_lcg);
    ("mandelbrot-2: P4 bitmap", `Quick, test_mandelbrot_output);
    ("binary-tree-2: GC syscall profile (Fig 12)", `Slow, test_gc_heavy_profile);
    ("fasta: write-dominated profile (Fig 10)", `Quick, test_fasta_write_profile);
    ("multiverse equivalence on benchmarks", `Slow, test_multiverse_equivalence_small);
    ("native <= virtual < multiverse (Fig 13)", `Quick, test_runtime_ordering);
    ("simulation is deterministic", `Quick, test_determinism);
    ("loadgen: open-loop smoke, admission off", `Quick, test_loadgen_smoke);
    ("loadgen: overload sheds, all calls accounted", `Quick, test_loadgen_overload_sheds);
    ("loadgen: bursty schedule deterministic", `Quick, test_loadgen_bursty_deterministic);
  ]
