(* Tests for the utility library: cycle/time conversion, deterministic
   RNG, statistics, histograms, table rendering. *)

open Mv_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let close ?(eps = 1e-9) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%g ~ %g)" msg a b) true (Float.abs (a -. b) < eps)

let test_cycles_roundtrip () =
  (* 2.2 GHz: 2200 cycles per microsecond. *)
  check_int "1 us" 2200 (Cycles.of_us 1.);
  check_int "1 ms" 2_200_000 (Cycles.of_ms 1.);
  close "to_us inverse" 1.0 (Cycles.to_us (Cycles.of_us 1.));
  close "to_sec of 2.2e9" 1.0 (Cycles.to_sec 2_200_000_000)

let test_cycles_paper_values () =
  (* Figure 2: 25 K cycles ~ 1.1 us; 790 cycles ~ 36 ns; 33 K ~ 1.5 us. *)
  close ~eps:0.1 "async channel" 11.4 (Cycles.to_us 25_000);
  close ~eps:1.0 "sync same socket" 359.0 (Cycles.to_ns 790);
  close ~eps:0.1 "merger" 15.0 (Cycles.to_us 33_000)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.next a) in
  let ys = List.init 100 (fun _ -> Rng.next b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.next c) in
  check_bool "different seed differs" true (xs <> zs)

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next a) in
  let ys = List.init 50 (fun _ -> Rng.next b) in
  check_bool "split streams differ" true (xs <> ys)

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"rng: int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  close "mean" 3.0 (Stats.mean s);
  close "min" 1.0 (Stats.min s);
  close "max" 5.0 (Stats.max s);
  close ~eps:1e-6 "stddev" (sqrt 2.) (Stats.stddev s);
  close "median" 3.0 (Stats.percentile s 50.)

let test_stats_percentiles () =
  let s = Stats.create () in
  (* Insert out of order: percentile must sort, not trust arrival order. *)
  List.iter (Stats.add s) [ 40.; 10.; 30.; 20. ];
  close "p0 = min" 10. (Stats.percentile s 0.);
  close "p100 = max" 40. (Stats.percentile s 100.);
  close "nearest-rank p50" 20. (Stats.percentile s 50.);
  close "interp p50 between ranks" 25. (Stats.percentile_interp s 50.);
  close "interp p25" 17.5 (Stats.percentile_interp s 25.);
  close "interp endpoints" 40. (Stats.percentile_interp s 100.);
  (* The sorted cache must be invalidated by add: query, add a new
     minimum, query again. *)
  close "cached p100" 40. (Stats.percentile s 100.);
  Stats.add s 5.;
  close "p0 after add sees new sample" 5. (Stats.percentile s 0.);
  close "interp p50 after add" 20. (Stats.percentile_interp s 50.)

let test_stats_summary () =
  let s = Stats.create () in
  Stats.add s 10.;
  let sum = Stats.summary s in
  check_int "count" 1 sum.Stats.s_count;
  close "mean" 10. sum.Stats.s_mean;
  close "stddev of single" 0. sum.Stats.s_stddev

(* Merging per-worker accumulators must be indistinguishable from having
   added every sample to one accumulator — that equivalence is what lets
   the parallel bench matrices reduce worker-local Stats without changing
   any reported number. *)
let qcheck_stats_merge_concat =
  QCheck.Test.make ~name:"stats: merge_into = add of concatenated samples" ~count:100
    QCheck.(pair (list (float_bound_exclusive 1000.)) (small_list (float_bound_exclusive 1000.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] || ys <> []);
      let direct = Stats.create () in
      List.iter (Stats.add direct) (xs @ ys);
      let dst = Stats.create () and src = Stats.create () in
      List.iter (Stats.add dst) xs;
      List.iter (Stats.add src) ys;
      (* Prime both percentile caches so the merge must invalidate dst's. *)
      if xs <> [] then ignore (Stats.percentile dst 50.);
      if ys <> [] then ignore (Stats.percentile src 50.);
      Stats.merge_into dst src;
      let eq a b = Float.abs (a -. b) < 1e-9 in
      Stats.count dst = Stats.count direct
      && eq (Stats.mean dst) (Stats.mean direct)
      && eq (Stats.stddev dst) (Stats.stddev direct)
      && eq (Stats.min dst) (Stats.min direct)
      && eq (Stats.max dst) (Stats.max direct)
      && List.for_all
           (fun p ->
             eq (Stats.percentile dst p) (Stats.percentile direct p)
             && eq (Stats.percentile_interp dst p) (Stats.percentile_interp direct p))
           [ 0.; 25.; 50.; 90.; 99.; 100. ]
      && (* src must be left intact *)
      Stats.count src = List.length ys)

let test_stats_merge_cache_invalidation () =
  let dst = Stats.create () and src = Stats.create () in
  List.iter (Stats.add dst) [ 10.; 20. ];
  List.iter (Stats.add src) [ 1.; 2. ];
  (* Build dst's sorted cache, then merge: stale cache would still answer
     from [10;20] and report p0 = 10. *)
  close "pre-merge p0" 10. (Stats.percentile dst 0.);
  Stats.merge_into dst src;
  close "post-merge p0 sees src samples" 1. (Stats.percentile dst 0.);
  close "post-merge p100" 20. (Stats.percentile dst 100.);
  check_int "post-merge count" 4 (Stats.count dst)

let test_stats_merge_empty () =
  let dst = Stats.create () and src = Stats.create () in
  List.iter (Stats.add dst) [ 3.; 7. ];
  Stats.merge_into dst src;
  check_int "empty src is a no-op" 2 (Stats.count dst);
  close "mean unchanged" 5. (Stats.mean dst);
  let dst2 = Stats.create () in
  Stats.merge_into dst2 dst;
  check_int "merge into empty adopts src" 2 (Stats.count dst2);
  close "extrema adopted" 3. (Stats.min dst2);
  close "extrema adopted hi" 7. (Stats.max dst2)

let qcheck_histogram_merge_pointwise =
  let entry = QCheck.(pair (oneofl [ "read"; "write"; "mmap"; "brk"; "futex" ]) (int_bound 50)) in
  QCheck.Test.make ~name:"histogram: merge = histogram of concatenated tallies" ~count:100
    QCheck.(pair (small_list entry) (small_list entry))
    (fun (xs, ys) ->
      let build entries =
        let h = Histogram.create () in
        List.iter (fun (k, n) -> Histogram.add h k n) entries;
        h
      in
      let merged = Histogram.merge (build xs) (build ys) in
      let direct = build (xs @ ys) in
      Histogram.to_sorted_list merged = Histogram.to_sorted_list direct
      && Histogram.total merged = Histogram.total direct)

let test_histogram () =
  let h = Histogram.create () in
  Histogram.incr h "read";
  Histogram.incr h "read";
  Histogram.add h "mmap" 5;
  check_int "read" 2 (Histogram.count h "read");
  check_int "absent" 0 (Histogram.count h "write");
  check_int "total" 7 (Histogram.total h);
  (match Histogram.to_sorted_list h with
  | [ ("mmap", 5); ("read", 2) ] -> ()
  | l ->
      Alcotest.failf "bad sort: %s"
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)));
  let h2 = Histogram.create () in
  Histogram.add h2 "read" 3;
  let m = Histogram.merge h h2 in
  check_int "merged read" 5 (Histogram.count m "read");
  check_int "original unchanged" 2 (Histogram.count h "read")

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "count" ] in
  Table.add_row t [ "alpha"; "10" ];
  Table.add_row t [ "b"; "2000" ];
  let s = Table.to_string t in
  check_bool "has header" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  (* Right-aligned numeric column: "  10" with padding. *)
  check_bool "numeric right-aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         match String.index_opt l '1' with
         | Some i -> i > 0 && String.contains l '0'
         | None -> false))

let suite =
  [
    ("cycles: conversions", `Quick, test_cycles_roundtrip);
    ("cycles: paper's figure-2 values", `Quick, test_cycles_paper_values);
    ("rng: deterministic", `Quick, test_rng_deterministic);
    ("rng: split independence", `Quick, test_rng_split_independent);
    QCheck_alcotest.to_alcotest qcheck_rng_bounds;
    ("stats: basic moments", `Quick, test_stats_basic);
    ("stats: percentiles, interp + cache invalidation", `Quick, test_stats_percentiles);
    ("stats: summary", `Quick, test_stats_summary);
    QCheck_alcotest.to_alcotest qcheck_stats_merge_concat;
    ("stats: merge invalidates the percentile cache", `Quick, test_stats_merge_cache_invalidation);
    ("stats: merge with empty sides", `Quick, test_stats_merge_empty);
    ("histogram: counts/sort/merge", `Quick, test_histogram);
    QCheck_alcotest.to_alcotest qcheck_histogram_merge_pointwise;
    ("table: rendering", `Quick, test_table_render);
  ]
