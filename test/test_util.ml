(* Tests for the utility library: cycle/time conversion, deterministic
   RNG, statistics, histograms, table rendering. *)

open Mv_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let close ?(eps = 1e-9) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%g ~ %g)" msg a b) true (Float.abs (a -. b) < eps)

let test_cycles_roundtrip () =
  (* 2.2 GHz: 2200 cycles per microsecond. *)
  check_int "1 us" 2200 (Cycles.of_us 1.);
  check_int "1 ms" 2_200_000 (Cycles.of_ms 1.);
  close "to_us inverse" 1.0 (Cycles.to_us (Cycles.of_us 1.));
  close "to_sec of 2.2e9" 1.0 (Cycles.to_sec 2_200_000_000)

let test_cycles_paper_values () =
  (* Figure 2: 25 K cycles ~ 1.1 us; 790 cycles ~ 36 ns; 33 K ~ 1.5 us. *)
  close ~eps:0.1 "async channel" 11.4 (Cycles.to_us 25_000);
  close ~eps:1.0 "sync same socket" 359.0 (Cycles.to_ns 790);
  close ~eps:0.1 "merger" 15.0 (Cycles.to_us 33_000)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.next a) in
  let ys = List.init 100 (fun _ -> Rng.next b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.next c) in
  check_bool "different seed differs" true (xs <> zs)

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next a) in
  let ys = List.init 50 (fun _ -> Rng.next b) in
  check_bool "split streams differ" true (xs <> ys)

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"rng: int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  close "mean" 3.0 (Stats.mean s);
  close "min" 1.0 (Stats.min s);
  close "max" 5.0 (Stats.max s);
  close ~eps:1e-6 "stddev" (sqrt 2.) (Stats.stddev s);
  close "median" 3.0 (Stats.percentile s 50.)

let test_stats_percentiles () =
  let s = Stats.create () in
  (* Insert out of order: percentile must sort, not trust arrival order. *)
  List.iter (Stats.add s) [ 40.; 10.; 30.; 20. ];
  close "p0 = min" 10. (Stats.percentile s 0.);
  close "p100 = max" 40. (Stats.percentile s 100.);
  close "nearest-rank p50" 20. (Stats.percentile s 50.);
  close "interp p50 between ranks" 25. (Stats.percentile_interp s 50.);
  close "interp p25" 17.5 (Stats.percentile_interp s 25.);
  close "interp endpoints" 40. (Stats.percentile_interp s 100.);
  (* The sorted cache must be invalidated by add: query, add a new
     minimum, query again. *)
  close "cached p100" 40. (Stats.percentile s 100.);
  Stats.add s 5.;
  close "p0 after add sees new sample" 5. (Stats.percentile s 0.);
  close "interp p50 after add" 20. (Stats.percentile_interp s 50.)

let test_stats_summary () =
  let s = Stats.create () in
  Stats.add s 10.;
  let sum = Stats.summary s in
  check_int "count" 1 sum.Stats.s_count;
  close "mean" 10. sum.Stats.s_mean;
  close "stddev of single" 0. sum.Stats.s_stddev

let test_histogram () =
  let h = Histogram.create () in
  Histogram.incr h "read";
  Histogram.incr h "read";
  Histogram.add h "mmap" 5;
  check_int "read" 2 (Histogram.count h "read");
  check_int "absent" 0 (Histogram.count h "write");
  check_int "total" 7 (Histogram.total h);
  (match Histogram.to_sorted_list h with
  | [ ("mmap", 5); ("read", 2) ] -> ()
  | l ->
      Alcotest.failf "bad sort: %s"
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)));
  let h2 = Histogram.create () in
  Histogram.add h2 "read" 3;
  let m = Histogram.merge h h2 in
  check_int "merged read" 5 (Histogram.count m "read");
  check_int "original unchanged" 2 (Histogram.count h "read")

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "count" ] in
  Table.add_row t [ "alpha"; "10" ];
  Table.add_row t [ "b"; "2000" ];
  let s = Table.to_string t in
  check_bool "has header" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  (* Right-aligned numeric column: "  10" with padding. *)
  check_bool "numeric right-aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         match String.index_opt l '1' with
         | Some i -> i > 0 && String.contains l '0'
         | None -> false))

let suite =
  [
    ("cycles: conversions", `Quick, test_cycles_roundtrip);
    ("cycles: paper's figure-2 values", `Quick, test_cycles_paper_values);
    ("rng: deterministic", `Quick, test_rng_deterministic);
    ("rng: split independence", `Quick, test_rng_split_independent);
    QCheck_alcotest.to_alcotest qcheck_rng_bounds;
    ("stats: basic moments", `Quick, test_stats_basic);
    ("stats: percentiles, interp + cache invalidation", `Quick, test_stats_percentiles);
    ("stats: summary", `Quick, test_stats_summary);
    ("histogram: counts/sort/merge", `Quick, test_histogram);
    ("table: rendering", `Quick, test_table_render);
  ]
