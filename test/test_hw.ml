(* Tests for the hardware model: addresses, page tables (including the
   lower-half merger semantics Multiverse relies on), TLB, physical memory,
   topology, and the CR0.WP kernel-write subtlety from Section 4.4. *)

open Mv_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Addr --- *)

let test_addr_halves () =
  check_bool "0 is lower" true (Addr.is_lower_half 0);
  check_bool "below 2^47 is lower" true (Addr.is_lower_half (Addr.lower_half_limit - 1));
  check_bool "2^47 is higher" true (Addr.is_higher_half Addr.higher_half_base);
  check_bool "2^47 not lower" false (Addr.is_lower_half Addr.higher_half_base)

let test_addr_indices_roundtrip () =
  let a = Addr.of_indices ~pml4:17 ~pdpt:255 ~pd:3 ~pt:511 ~offset:123 in
  check_int "pml4" 17 (Addr.pml4_index a);
  check_int "pdpt" 255 (Addr.pdpt_index a);
  check_int "pd" 3 (Addr.pd_index a);
  check_int "pt" 511 (Addr.pt_index a);
  check_int "offset" 123 (Addr.page_offset a)

let test_addr_lower_half_pml4_range () =
  (* Lower-half addresses occupy exactly PML4 slots 0..255 — the slots the
     merger copies. *)
  let top_lower = Addr.lower_half_limit - 1 in
  check_int "last lower-half slot" 255 (Addr.pml4_index top_lower);
  check_int "first higher-half slot" 256 (Addr.pml4_index Addr.higher_half_base)

let test_addr_canonical () =
  Alcotest.(check int64)
    "higher half sign-extends" 0xffff_8000_0000_0000L
    (Addr.canonical64 Addr.higher_half_base);
  Alcotest.(check int64) "lower half unchanged" 0x7000L (Addr.canonical64 0x7000)

let test_addr_align () =
  check_int "align_down" 0x1000 (Addr.align_down 0x1fff);
  check_int "align_up" 0x2000 (Addr.align_up 0x1001);
  check_int "align_up idempotent on aligned" 0x1000 (Addr.align_up 0x1000)

let qcheck_addr_page_roundtrip =
  QCheck.Test.make ~name:"addr: page_of/base_of_page roundtrip"
    QCheck.(int_bound (Addr.space_limit - 1))
    (fun a ->
      let p = Addr.page_of a in
      Addr.base_of_page p <= a
      && a < Addr.base_of_page p + Addr.page_size
      && Addr.is_page_aligned (Addr.base_of_page p))

(* --- Page_table --- *)

let pf = Page_table.(f_present lor f_writable lor f_user)

let test_pt_map_lookup () =
  let pt = Page_table.create () in
  let a = 0x400000 in
  Page_table.map pt a ~frame:42 ~flags:pf;
  (match Page_table.lookup pt a with
  | Some e ->
      check_int "frame" 42 e.Page_table.frame;
      check_bool "present" true Page_table.(has e.pte_flags f_present)
  | None -> Alcotest.fail "mapping missing");
  check_bool "other page unmapped" true (Page_table.lookup pt (a + 0x1000) = None)

let test_pt_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt 0x1000 ~frame:1 ~flags:pf;
  check_bool "unmap hits" true (Page_table.unmap pt 0x1000);
  check_bool "gone" true (Page_table.lookup pt 0x1000 = None);
  check_bool "second unmap misses" false (Page_table.unmap pt 0x1000)

let test_pt_protect () =
  let pt = Page_table.create () in
  Page_table.map pt 0x1000 ~frame:1 ~flags:pf;
  let ro = Page_table.(f_present lor f_user) in
  check_bool "protect hits" true (Page_table.protect pt 0x1000 ~flags:ro);
  match Page_table.lookup pt 0x1000 with
  | Some e -> check_bool "now read-only" false Page_table.(has e.pte_flags f_writable)
  | None -> Alcotest.fail "mapping missing"

let test_pt_walk_levels () =
  let pt = Page_table.create () in
  let a = Addr.of_indices ~pml4:1 ~pdpt:2 ~pd:3 ~pt:4 ~offset:0 in
  let _, lvl_empty = Page_table.walk pt a in
  check_int "stops at pml4 when empty" 1 lvl_empty;
  Page_table.map pt a ~frame:9 ~flags:pf;
  let entry, lvl_full = Page_table.walk pt a in
  check_bool "found" true (entry <> None);
  check_int "walks 4 levels" 4 lvl_full;
  (* A sibling sharing only the PML4 slot stops at level 2. *)
  let sibling = Addr.of_indices ~pml4:1 ~pdpt:7 ~pd:0 ~pt:0 ~offset:0 in
  let _, lvl_sib = Page_table.walk pt sibling in
  check_int "sibling stops at pdpt" 2 lvl_sib

let test_pt_merger_shares_subtrees () =
  (* The heart of the merged address space: after copying the lower-half
     PML4, mappings made by the ROS below an already-present slot become
     visible to the HRT without a re-merge. *)
  let ros = Page_table.create () in
  let hrt = Page_table.create () in
  let a = 0x7f0000000000 in
  Page_table.map ros a ~frame:1 ~flags:pf;
  let copied = Page_table.copy_lower_half ~src:ros ~dst:hrt in
  check_int "one populated slot copied" 1 copied;
  check_bool "hrt sees mapping" true (Page_table.lookup hrt a <> None);
  (* Same PML4 slot, new page: visible without re-merge. *)
  let b = a + 0x1000 in
  Page_table.map ros b ~frame:2 ~flags:pf;
  check_bool "shared subtree: new mapping visible" true (Page_table.lookup hrt b <> None)

let test_pt_merger_stale_toplevel () =
  (* A mapping under a fresh PML4 slot is NOT visible until re-merge: this
     is the repeat-fault situation Nautilus detects (Section 4.4). *)
  let ros = Page_table.create () in
  let hrt = Page_table.create () in
  Page_table.map ros 0x1000 ~frame:1 ~flags:pf;
  ignore (Page_table.copy_lower_half ~src:ros ~dst:hrt);
  let gen_at_merge = Page_table.lower_half_generation hrt in
  (* ROS maps under PML4 slot 2 — a slot that was empty at merge time. *)
  let far = Addr.of_indices ~pml4:2 ~pdpt:0 ~pd:0 ~pt:0 ~offset:0 in
  Page_table.map ros far ~frame:3 ~flags:pf;
  check_bool "hrt does not see it" true (Page_table.lookup hrt far = None);
  check_bool "generation diverged" true
    (Page_table.lower_half_generation ros <> gen_at_merge);
  ignore (Page_table.copy_lower_half ~src:ros ~dst:hrt);
  check_bool "visible after re-merge" true (Page_table.lookup hrt far <> None)

let test_pt_clear_lower_half () =
  let pt = Page_table.create () in
  Page_table.map pt 0x1000 ~frame:1 ~flags:pf;
  Page_table.map pt Addr.higher_half_base ~frame:2 ~flags:Page_table.f_present;
  Page_table.clear_lower_half pt;
  check_bool "lower gone" true (Page_table.lookup pt 0x1000 = None);
  check_bool "higher intact" true (Page_table.lookup pt Addr.higher_half_base <> None)

let qcheck_pt_map_unmap =
  QCheck.Test.make ~name:"page table: mapped set matches model"
    QCheck.(small_list (pair (int_bound 4095) bool))
    (fun ops ->
      let pt = Page_table.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (page, do_map) ->
          let addr = Addr.base_of_page page in
          if do_map then begin
            Page_table.map pt addr ~frame:page ~flags:pf;
            Hashtbl.replace model page ()
          end
          else begin
            ignore (Page_table.unmap pt addr);
            Hashtbl.remove model page
          end)
        ops;
      Page_table.count_mapped pt = Hashtbl.length model)

(* --- Tlb --- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~capacity:2 () in
  let pte = Page_table.{ frame = 1; pte_flags = pf } in
  check_bool "miss first" true (Tlb.lookup tlb ~page:1 = None);
  Tlb.fill tlb ~page:1 pte;
  check_bool "hit after fill" true (Tlb.lookup tlb ~page:1 <> None);
  check_int "hits" 1 (Tlb.hits tlb);
  check_int "misses" 1 (Tlb.misses tlb)

let test_tlb_eviction () =
  let tlb = Tlb.create ~capacity:2 () in
  let pte n = Page_table.{ frame = n; pte_flags = pf } in
  Tlb.fill tlb ~page:1 (pte 1);
  Tlb.fill tlb ~page:2 (pte 2);
  Tlb.fill tlb ~page:3 (pte 3);
  (* FIFO: page 1 evicted. *)
  check_bool "oldest evicted" true (Tlb.lookup tlb ~page:1 = None);
  check_bool "newest present" true (Tlb.lookup tlb ~page:3 <> None)

let test_tlb_flush_invalidate () =
  let tlb = Tlb.create () in
  let pte = Page_table.{ frame = 1; pte_flags = pf } in
  Tlb.fill tlb ~page:7 pte;
  Tlb.invalidate_page tlb ~page:7;
  check_bool "invalidated" true (Tlb.lookup tlb ~page:7 = None);
  Tlb.fill tlb ~page:8 pte;
  Tlb.flush tlb;
  check_bool "flushed" true (Tlb.lookup tlb ~page:8 = None);
  check_int "occupancy zero" 0 (int_of_float (Tlb.occupancy tlb *. 100.))

(* --- Phys_mem --- *)

let test_phys_partitions () =
  let pm = Phys_mem.create ~frames_per_zone:100 ~sockets:2 ~hrt_fraction:0.25 () in
  check_int "ros frames" 150 (Phys_mem.total pm Phys_mem.Ros_region);
  check_int "hrt frames" 50 (Phys_mem.total pm Phys_mem.Hrt_region);
  let f_ros = Phys_mem.alloc pm Phys_mem.Ros_region in
  let f_hrt = Phys_mem.alloc pm Phys_mem.Hrt_region in
  check_bool "regions tracked" true
    (Phys_mem.region_of_frame pm f_ros = Phys_mem.Ros_region
    && Phys_mem.region_of_frame pm f_hrt = Phys_mem.Hrt_region)

let test_phys_numa_preference () =
  let pm = Phys_mem.create ~frames_per_zone:100 ~sockets:2 ~hrt_fraction:0.25 () in
  let f = Phys_mem.alloc pm ~zone:1 Phys_mem.Ros_region in
  check_int "frame from requested zone" 1 (Phys_mem.zone_of_frame pm f)

let test_phys_exhaustion_and_free () =
  let pm = Phys_mem.create ~frames_per_zone:4 ~sockets:1 ~hrt_fraction:0.5 () in
  let f1 = Phys_mem.alloc pm Phys_mem.Hrt_region in
  let _f2 = Phys_mem.alloc pm Phys_mem.Hrt_region in
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Phys_mem.alloc pm Phys_mem.Hrt_region));
  Phys_mem.free pm f1;
  let f3 = Phys_mem.alloc pm Phys_mem.Hrt_region in
  check_int "recycled frame" f1 f3;
  Alcotest.check_raises "double free"
    (Invalid_argument
       (Printf.sprintf "Phys_mem.free: frame %d (zone %d) not allocated" f1
          (Phys_mem.zone_of_frame pm f1)))
    (fun () ->
      Phys_mem.free pm f1;
      Phys_mem.free pm f1)

(* --- Topology --- *)

let test_topology_partition () =
  let topo = Topology.create ~hrt_cores:2 () in
  Alcotest.(check (list int)) "hrt cores are the last two" [ 6; 7 ] (Topology.cores_of topo 1);
  check_int "six ros cores" 6 (List.length (Topology.ros_cores topo));
  check_bool "same socket" true (Topology.same_socket topo 0 3);
  check_bool "cross socket" false (Topology.same_socket topo 0 4);
  check_int "first hrt core" 6 (List.hd (Topology.cores_of topo 1));
  check_int "two partitions" 2 (Topology.nparts topo);
  check_int "one hrt partition" 1 (List.length (Topology.hrt_partitions topo));
  check_int "core 7 owned by partition 1" 1 (Topology.partition_of topo 7);
  check_int "core 0 owned by the ros" 0 (Topology.partition_of topo 0)

let test_topology_multi_partition () =
  let topo = Topology.create ~hrt_parts:[ 2; 1 ] () in
  check_int "three partitions" 3 (Topology.nparts topo);
  Alcotest.(check (list int)) "partition 1 gets the lower carve" [ 5; 6 ] (Topology.cores_of topo 1);
  Alcotest.(check (list int)) "partition 2 gets the top core" [ 7 ] (Topology.cores_of topo 2);
  Alcotest.(check (list int)) "ros keeps the rest" [ 0; 1; 2; 3; 4 ] (Topology.ros_cores topo);
  check_bool "partition 2 is hrt" true (Partition.is_hrt (Topology.partition topo 2));
  (* A singleton spec is byte-identical to the legacy hrt_cores carve. *)
  let legacy = Topology.create ~hrt_cores:2 () in
  let speced = Topology.create ~hrt_parts:[ 2 ] ~hrt_cores:0 () in
  Alcotest.(check (list int))
    "singleton spec matches legacy carve"
    (Topology.cores_of legacy 1) (Topology.cores_of speced 1)

let test_topology_reassign () =
  let topo = Topology.create ~hrt_parts:[ 2; 1 ] () in
  Topology.reassign topo ~core:5 2;
  check_int "core 5 moved to partition 2" 2 (Topology.partition_of topo 5);
  check_int "home is still partition 1" 1 (Topology.home_of topo 5);
  Alcotest.(check (list int)) "partition 2 now holds both" [ 5; 7 ] (Topology.cores_of topo 2);
  Alcotest.(check (list int)) "partition 1 shrank" [ 6 ] (Topology.cores_of topo 1);
  check_bool "role still hrt" true (Topology.role topo 5 = Topology.Hrt_core);
  Topology.reassign topo ~core:5 0;
  check_bool "lent to ros flips the role" true (Topology.role topo 5 = Topology.Ros_core);
  Alcotest.(check (list int)) "ros grew" [ 0; 1; 2; 3; 4; 5 ] (Topology.ros_cores topo)

let test_topology_distance () =
  let topo = Topology.create ~sockets:4 ~cores_per_socket:32 ~hrt_cores:16 () in
  check_int "local" 0 (Topology.distance topo 0 31);
  check_int "one hop" 1 (Topology.distance topo 0 32);
  check_int "three hops" 3 (Topology.distance topo 0 127);
  check_bool "symmetric" true
    (Topology.distance topo 127 0 = Topology.distance topo 0 127);
  check_int "socket_of" 3 (Topology.socket_of topo 100);
  (* Two sockets reduce to the same_socket boolean. *)
  let two = Topology.create ~hrt_cores:1 () in
  check_int "2-socket local" 0 (Topology.distance two 0 3);
  check_int "2-socket remote" 1 (Topology.distance two 0 4)

let test_phys_alloc_near () =
  let pm =
    Phys_mem.create ~frames_per_zone:10 ~cores_per_socket:2 ~sockets:4
      ~hrt_fraction:0.2 ()
  in
  let f = Phys_mem.alloc_near pm ~core:5 Phys_mem.Ros_region in
  check_int "core 5 allocates in zone 2" 2 (Phys_mem.zone_of_frame pm f);
  Alcotest.(check (list int))
    "fallback from zone 2 is distance-ordered" [ 2; 1; 3; 0 ]
    (Phys_mem.fallback_order pm ~zone:2);
  Alcotest.(check (list int))
    "fallback from zone 0 is the flat order" [ 0; 1; 2; 3 ]
    (Phys_mem.fallback_order pm ~zone:0)

let test_topology_invalid () =
  Alcotest.check_raises "all cores HRT rejected"
    (Invalid_argument
       "Topology.create: partition spec [8] leaves no ROS core on the 2x4 machine")
    (fun () -> ignore (Topology.create ~hrt_cores:8 ()));
  Alcotest.check_raises "greedy spec rejected"
    (Invalid_argument
       "Topology.create: partition spec [4,4] leaves no ROS core on the 2x4 machine")
    (fun () -> ignore (Topology.create ~hrt_parts:[ 4; 4 ] ~hrt_cores:0 ()));
  Alcotest.check_raises "empty partition rejected"
    (Invalid_argument
       "Topology.create: partition 2 of spec [2,0] must have at least one core")
    (fun () -> ignore (Topology.create ~hrt_parts:[ 2; 0 ] ~hrt_cores:0 ()))

(* --- Mmu --- *)

let costs = Costs.default

let test_mmu_hit_and_fault () =
  let cpu = Cpu.create ~core_id:0 in
  let root = Page_table.create () in
  Cpu.load_cr3 cpu root;
  Page_table.map root 0x1000 ~frame:5 ~flags:pf;
  (match Mmu.access costs cpu root 0x1000 Mmu.Read with
  | Mmu.Hit (e, _) -> check_int "frame" 5 e.Page_table.frame
  | _ -> Alcotest.fail "expected hit");
  match Mmu.access costs cpu root 0x2000 Mmu.Read with
  | Mmu.Fault (Mmu.Not_present, _) -> ()
  | _ -> Alcotest.fail "expected not-present fault"

let test_mmu_tlb_caches () =
  let cpu = Cpu.create ~core_id:0 in
  let root = Page_table.create () in
  Cpu.load_cr3 cpu root;
  Page_table.map root 0x1000 ~frame:5 ~flags:pf;
  let cost_of = function
    | Mmu.Hit (_, c) -> c
    | Mmu.Silent_write (_, c) -> c
    | Mmu.Fault (_, c) -> c
  in
  let first = cost_of (Mmu.access costs cpu root 0x1000 Mmu.Read) in
  let second = cost_of (Mmu.access costs cpu root 0x1000 Mmu.Read) in
  check_bool "cached lookup cheaper" true (second < first)

let test_mmu_ring0_wp_semantics () =
  (* Section 4.4: in ring 0 with CR0.WP clear, a write to a read-only page
     silently succeeds ("mysterious memory corruption"); setting WP restores
     the fault. *)
  let cpu = Cpu.create ~core_id:0 in
  let root = Page_table.create () in
  Cpu.load_cr3 cpu root;
  let ro = Page_table.(f_present lor f_user) in
  Page_table.map root 0x1000 ~frame:5 ~flags:ro;
  cpu.Cpu.ring <- 0;
  cpu.Cpu.cr0_wp <- false;
  (match Mmu.access costs cpu root 0x1000 Mmu.Write with
  | Mmu.Silent_write _ -> ()
  | _ -> Alcotest.fail "expected silent corrupting write");
  cpu.Cpu.cr0_wp <- true;
  (match Mmu.access costs cpu root 0x1000 Mmu.Write with
  | Mmu.Fault (Mmu.Protection, _) -> ()
  | _ -> Alcotest.fail "expected protection fault with WP set");
  (* Ring 3 faults regardless of WP. *)
  cpu.Cpu.ring <- 3;
  cpu.Cpu.cr0_wp <- false;
  match Mmu.access costs cpu root 0x1000 Mmu.Write with
  | Mmu.Fault (Mmu.Protection, _) -> ()
  | _ -> Alcotest.fail "expected user protection fault"

let test_mmu_stale_tlb_after_protect () =
  let cpu = Cpu.create ~core_id:0 in
  let root = Page_table.create () in
  Cpu.load_cr3 cpu root;
  Page_table.map root 0x1000 ~frame:5 ~flags:pf;
  ignore (Mmu.access costs cpu root 0x1000 Mmu.Write);
  (* Downgrade to read-only; the PTE object is shared with the TLB, so the
     change is visible without an explicit invalidation (hardware would
     need an invlpg; we model the conservative case). *)
  ignore (Page_table.protect root 0x1000 ~flags:Page_table.(f_present lor f_user));
  cpu.Cpu.ring <- 3;
  match Mmu.access costs cpu root 0x1000 Mmu.Write with
  | Mmu.Fault (Mmu.Protection, _) -> ()
  | _ -> Alcotest.fail "expected fault after protect"

let suite =
  [
    ("addr: canonical halves", `Quick, test_addr_halves);
    ("addr: index round trip", `Quick, test_addr_indices_roundtrip);
    ("addr: lower half is PML4 0..255", `Quick, test_addr_lower_half_pml4_range);
    ("addr: canonical 64-bit form", `Quick, test_addr_canonical);
    ("addr: alignment", `Quick, test_addr_align);
    QCheck_alcotest.to_alcotest qcheck_addr_page_roundtrip;
    ("page-table: map/lookup", `Quick, test_pt_map_lookup);
    ("page-table: unmap", `Quick, test_pt_unmap);
    ("page-table: protect", `Quick, test_pt_protect);
    ("page-table: walk depth", `Quick, test_pt_walk_levels);
    ("page-table: merger shares subtrees", `Quick, test_pt_merger_shares_subtrees);
    ("page-table: stale top-level slot needs re-merge", `Quick, test_pt_merger_stale_toplevel);
    ("page-table: clear lower half", `Quick, test_pt_clear_lower_half);
    QCheck_alcotest.to_alcotest qcheck_pt_map_unmap;
    ("tlb: hit/miss", `Quick, test_tlb_hit_miss);
    ("tlb: eviction", `Quick, test_tlb_eviction);
    ("tlb: flush/invalidate", `Quick, test_tlb_flush_invalidate);
    ("phys: partitions", `Quick, test_phys_partitions);
    ("phys: NUMA preference", `Quick, test_phys_numa_preference);
    ("phys: exhaustion and free", `Quick, test_phys_exhaustion_and_free);
    ("phys: alloc_near and fallback order", `Quick, test_phys_alloc_near);
    ("topology: partition", `Quick, test_topology_partition);
    ("topology: multi-partition spec", `Quick, test_topology_multi_partition);
    ("topology: reassign under lending", `Quick, test_topology_reassign);
    ("topology: NUMA distance", `Quick, test_topology_distance);
    ("topology: invalid geometry", `Quick, test_topology_invalid);
    ("mmu: hit and not-present fault", `Quick, test_mmu_hit_and_fault);
    ("mmu: tlb caches translations", `Quick, test_mmu_tlb_caches);
    ("mmu: ring0 WP semantics", `Quick, test_mmu_ring0_wp_semantics);
    ("mmu: protect visible through tlb", `Quick, test_mmu_stale_tlb_after_protect);
  ]
