(* Tests for lib/obs — the observability backbone:

   - Tracer: span nesting, ambient parent defaulting, out-of-order close,
     per-track isolation, disabled-path behavior, capacity bounding.
   - QCheck: under random begin/end schedules across several tracks,
     every span closes exactly once and every parent's interval contains
     its children's.
   - Metrics: idempotent registration, counter/gauge/latency cells.
   - Export: golden Chrome trace-event JSON for a fixed scenario
     (regenerate with MV_GOLDEN_PROMOTE=1), folded-stack shape.
   - End-to-end acceptance: critical-path attribution >= 95% on
     binary-tree-2 under multiverse; folded output non-empty in all
     three run modes. *)

open Multiverse
module Tracer = Mv_obs.Tracer
module Metrics = Mv_obs.Metrics
module Export = Mv_obs.Export
module Critical_path = Mv_obs.Critical_path
module Machine = Mv_engine.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tracer over a hand-cranked clock and track register. *)
let make ?(capacity = 1_000_000) () =
  let clock = ref 0 and track = ref 0 in
  let t =
    Tracer.create ~enabled:true ~capacity
      ~now:(fun () -> !clock)
      ~track:(fun () -> !track)
      ~track_name:(fun () -> Printf.sprintf "track-%d" !track)
      ()
  in
  (t, clock, track)

let span_named t name =
  match List.find_opt (fun sp -> sp.Tracer.sp_name = name) (Tracer.spans t) with
  | Some sp -> sp
  | None -> Alcotest.failf "no completed span named %S" name

(* --- Tracer units --- *)

let test_nesting () =
  let t, clock, _ = make () in
  let a = Tracer.begin_span t ~name:"a" ~cat:"x" () in
  check_int "current = a" a (Tracer.current t);
  clock := 10;
  let b = Tracer.begin_span t ~name:"b" ~cat:"x" () in
  check_int "current = innermost" b (Tracer.current t);
  check_int "open" 2 (Tracer.open_count t);
  clock := 25;
  Tracer.end_span t b;
  clock := 40;
  Tracer.end_span t a;
  check_int "open after" 0 (Tracer.open_count t);
  check_int "completed" 2 (Tracer.span_count t);
  let sa = span_named t "a" and sb = span_named t "b" in
  check_int "a is root" 0 sa.Tracer.sp_parent;
  check_int "b's parent defaults to a" a sb.Tracer.sp_parent;
  check_int "a ts" 0 sa.Tracer.sp_ts;
  check_int "a dur" 40 sa.Tracer.sp_dur;
  check_int "b ts" 10 sb.Tracer.sp_ts;
  check_int "b dur" 15 sb.Tracer.sp_dur

let test_out_of_order_close () =
  let t, clock, _ = make () in
  let a = Tracer.begin_span t ~name:"a" ~cat:"x" () in
  clock := 1;
  let _b = Tracer.begin_span t ~name:"b" ~cat:"x" () in
  clock := 2;
  let _c = Tracer.begin_span t ~name:"c" ~cat:"x" () in
  clock := 9;
  (* Ending the outermost also closes the still-open spans inside it. *)
  Tracer.end_span t a;
  check_int "all closed" 0 (Tracer.open_count t);
  check_int "all completed" 3 (Tracer.span_count t);
  check_int "c end" 9 ((span_named t "c").Tracer.sp_ts + (span_named t "c").Tracer.sp_dur);
  check_int "a end" 9 ((span_named t "a").Tracer.sp_ts + (span_named t "a").Tracer.sp_dur)

let test_disabled_is_inert () =
  let t, _, _ = make () in
  Tracer.set_enabled t false;
  let id = Tracer.begin_span t ~name:"a" ~cat:"x" () in
  check_int "begin returns 0" 0 id;
  Tracer.end_span t id;
  Tracer.annotate t "k" "v";
  Tracer.instant t ~name:"i" ();
  check_int "with_span still runs the body" 7
    (Tracer.with_span t ~name:"w" ~cat:"x" (fun () -> 7));
  check_int "nothing recorded" 0 (Tracer.span_count t);
  check_int "nothing open" 0 (Tracer.open_count t);
  check_int "no drops" 0 (Tracer.dropped t)

let test_complete_and_annotate () =
  let t, clock, _ = make () in
  let cr = Tracer.begin_span t ~name:"fwd:write" ~cat:"crossing" () in
  Tracer.annotate t "len" "42";
  clock := 300;
  let seg = Tracer.complete t ~parent:cr ~name:"service" ~cat:"service" ~ts:80 ~dur:150 () in
  check_bool "complete returns a fresh id" true (seg <> 0 && seg <> cr);
  Tracer.end_span t cr;
  let s = span_named t "service" in
  check_int "explicit parent" cr s.Tracer.sp_parent;
  check_int "explicit ts" 80 s.Tracer.sp_ts;
  check_int "explicit dur" 150 s.Tracer.sp_dur;
  check_bool "annotation attached" true
    (List.mem ("len", "42") (span_named t "fwd:write").Tracer.sp_args)

let test_capacity_bounds () =
  let t, _, _ = make ~capacity:2 () in
  for i = 1 to 5 do
    ignore (Tracer.complete t ~name:(string_of_int i) ~cat:"x" ~ts:0 ~dur:1 ())
  done;
  check_int "retained" 2 (Tracer.span_count t);
  check_int "dropped counted" 3 (Tracer.dropped t)

let test_tracks_isolated () =
  let t, clock, track = make () in
  let a = Tracer.begin_span t ~name:"a" ~cat:"x" () in
  track := 1;
  check_int "no ambient parent on another track" 0 (Tracer.current t);
  clock := 5;
  let b = Tracer.begin_span t ~name:"b" ~cat:"x" () in
  clock := 6;
  Tracer.end_span t b;
  track := 0;
  clock := 9;
  Tracer.end_span t a;
  check_int "b is a root on its own track" 0 (span_named t "b").Tracer.sp_parent;
  check_int "b's track" 1 (span_named t "b").Tracer.sp_track;
  Alcotest.(check (list int)) "tracks seen" [ 0; 1 ] (Tracer.tracks t);
  Alcotest.(check string) "track label" "track-1" (Tracer.track_label t 1)

(* --- QCheck: random schedules --- *)

(* Each op is (track, action, pick): action <= 1 opens a span (bias
   towards deep nesting), otherwise it closes the pick-th innermost open
   span of that track — often not the innermost, exercising the
   close-nested-orphans path. *)
let arb_schedule =
  QCheck.small_list QCheck.(triple (int_bound 2) (int_bound 3) small_nat)

let rec drop k = function
  | l when k <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (k - 1) tl

let qcheck_spans_close_once =
  QCheck.Test.make
    ~name:"tracer: every span closes exactly once under random schedules"
    ~count:300 arb_schedule
    (fun ops ->
      let t, clock, track = make () in
      let opens = Array.make 3 [] (* per-track open ids, innermost first *) in
      let begins = ref 0 in
      List.iter
        (fun (tr, action, pick) ->
          incr clock;
          track := tr;
          if action <= 1 then begin
            let id =
              Tracer.begin_span t ~name:(Printf.sprintf "s%d" !begins) ~cat:"q" ()
            in
            opens.(tr) <- id :: opens.(tr);
            incr begins
          end
          else
            match opens.(tr) with
            | [] -> ()
            | l ->
                let k = pick mod List.length l in
                Tracer.end_span t (List.nth l k);
                opens.(tr) <- drop (k + 1) l)
        ops;
      (* Quiesce: ending each track's oldest span closes the rest. *)
      Array.iteri
        (fun tr l ->
          track := tr;
          incr clock;
          match List.rev l with [] -> () | oldest :: _ -> Tracer.end_span t oldest)
        opens;
      let spans = Tracer.spans t in
      let ids = List.map (fun sp -> sp.Tracer.sp_id) spans in
      Tracer.open_count t = 0
      && Tracer.span_count t = !begins
      && List.length (List.sort_uniq compare ids) = !begins)

let qcheck_parents_outlive_children =
  QCheck.Test.make
    ~name:"tracer: parent intervals contain their children's" ~count:300
    arb_schedule
    (fun ops ->
      let t, clock, track = make () in
      let opens = Array.make 3 [] in
      let n = ref 0 in
      List.iter
        (fun (tr, action, pick) ->
          incr clock;
          track := tr;
          if action <= 1 then begin
            let id = Tracer.begin_span t ~name:(Printf.sprintf "s%d" !n) ~cat:"q" () in
            opens.(tr) <- id :: opens.(tr);
            incr n
          end
          else
            match opens.(tr) with
            | [] -> ()
            | l ->
                let k = pick mod List.length l in
                Tracer.end_span t (List.nth l k);
                opens.(tr) <- drop (k + 1) l)
        ops;
      Array.iteri
        (fun tr l ->
          track := tr;
          incr clock;
          match List.rev l with [] -> () | oldest :: _ -> Tracer.end_span t oldest)
        opens;
      let spans = Tracer.spans t in
      let by_id = Hashtbl.create 64 in
      List.iter (fun sp -> Hashtbl.replace by_id sp.Tracer.sp_id sp) spans;
      List.for_all
        (fun sp ->
          sp.Tracer.sp_parent = 0
          ||
          match Hashtbl.find_opt by_id sp.Tracer.sp_parent with
          | None -> false
          | Some p ->
              p.Tracer.sp_track = sp.Tracer.sp_track
              && p.Tracer.sp_ts <= sp.Tracer.sp_ts
              && p.Tracer.sp_ts + p.Tracer.sp_dur
                 >= sp.Tracer.sp_ts + sp.Tracer.sp_dur)
        spans)

(* --- Metrics --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~ns:"fabric" "calls" in
  Metrics.inc c ();
  Metrics.inc c ~by:4 ();
  (* Registration is idempotent: same cell on re-lookup. *)
  check_int "idempotent lookup" 5
    (Metrics.counter_value (Metrics.counter m ~ns:"fabric" "calls"));
  let g = Metrics.gauge m ~ns:"sgc" "live_ratio" in
  Metrics.set_gauge g 0.5;
  Alcotest.(check (float 1e-9)) "gauge" 0.5 (Metrics.gauge_value g);
  let l = Metrics.latency m ~ns:"fabric" "crossing:write" in
  Metrics.observe l 100.0;
  Metrics.observe l 300.0;
  check_int "latency samples" 2 (Metrics.latency_stats l).Mv_util.Stats.s_count;
  (match Metrics.find m "fabric/calls" with
  | Some (Metrics.Counter_v 5) -> ()
  | _ -> Alcotest.fail "find fabric/calls");
  check_bool "find miss" true (Metrics.find m "fabric/nope" = None);
  let names = List.map fst (Metrics.to_list m) in
  Alcotest.(check (list string))
    "sorted by full name"
    [ "fabric/calls"; "fabric/crossing:write"; "sgc/live_ratio" ]
    names

(* --- Critical path over synthetic spans + golden Chrome export --- *)

(* The fixed scenario behind both the golden export and the synthetic
   critical-path check: one crossing with measured transport/service/
   reply segments (10 uncovered cycles -> guest), an instant on a second
   track, and two metrics. *)
let golden_scenario () =
  let t, clock, track = make () in
  let m = Metrics.create () in
  Metrics.inc (Metrics.counter m ~ns:"fabric" "calls") ~by:3 ();
  Metrics.observe (Metrics.latency m ~ns:"fabric" "crossing:write") 120.0;
  let root = Tracer.begin_span t ~name:"run:test" ~cat:"sim" () in
  clock := 100;
  let cr = Tracer.begin_span t ~name:"fwd:write" ~cat:"crossing" () in
  Tracer.annotate t "len" "42";
  clock := 400;
  ignore (Tracer.complete t ~parent:cr ~name:"transport" ~cat:"transport" ~ts:100 ~dur:80 ());
  ignore (Tracer.complete t ~parent:cr ~name:"service" ~cat:"service" ~ts:180 ~dur:150 ());
  ignore (Tracer.complete t ~parent:cr ~name:"reply" ~cat:"reply" ~ts:330 ~dur:60 ());
  Tracer.end_span t cr;
  track := 1;
  Tracer.instant t ~cat:"fault" ~detail:"pid=1" ~name:"pagefault" ();
  track := 0;
  clock := 1000;
  Tracer.end_span t root;
  (t, m)

let test_critical_path_synthetic () =
  let t, _ = golden_scenario () in
  let report = Critical_path.compute (Tracer.spans t) in
  (match report.Critical_path.rows with
  | [ row ] ->
      Alcotest.(check string) "kind" "fwd:write" row.Critical_path.r_kind;
      check_int "count" 1 row.Critical_path.r_count;
      check_int "total" 300 row.Critical_path.r_total;
      check_int "transport" 80 row.Critical_path.r_transport;
      check_int "service" 150 row.Critical_path.r_service;
      check_int "reply" 60 row.Critical_path.r_reply;
      check_int "guest = uncovered remainder" 10 row.Critical_path.r_guest
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  Alcotest.(check (float 1e-9))
    "fully attributed" 1.0
    (Critical_path.attributed_fraction report)

let golden_path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "golden/obs_chrome.trace";
      "golden/obs_chrome.trace";
      "test/golden/obs_chrome.trace";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_chrome () =
  let t, m = golden_scenario () in
  let actual = Export.chrome ~process_name:"golden/obs" ~metrics:m t in
  match Sys.getenv_opt "MV_GOLDEN_PROMOTE" with
  | Some _ ->
      let path =
        if Sys.file_exists "test/golden" then "test/golden/obs_chrome.trace"
        else golden_path
      in
      let oc = open_out_bin path in
      output_string oc actual;
      close_out oc
  | None ->
      let expected =
        try read_file golden_path
        with Sys_error _ ->
          Alcotest.failf
            "missing %s — regenerate with: MV_GOLDEN_PROMOTE=1 dune exec \
             test/test_main.exe -- test obs"
            golden_path
      in
      if actual <> expected then
        Alcotest.failf
          "Chrome export diverged (%d bytes, want %d).  If intentional, \
           regenerate with: MV_GOLDEN_PROMOTE=1 dune exec test/test_main.exe \
           -- test obs"
          (String.length actual) (String.length expected)

let test_folded_synthetic () =
  let t, _ = golden_scenario () in
  let folded = Export.folded t in
  check_bool "non-empty" true (String.length folded > 0);
  (* Every line is "stack N" with N > 0, and the crossing's self time
     (300 total - 290 covered) shows up under the root. *)
  String.split_on_char '\n' folded
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "malformed folded line %S" line
         | Some i ->
             let w = String.sub line (i + 1) (String.length line - i - 1) in
             check_bool "positive weight" true (int_of_string w > 0));
  check_bool "crossing stack present" true
    (List.exists
       (fun l ->
         String.length l >= String.length "track-0;run:test;fwd:write"
         && String.sub l 0 (String.length "track-0;run:test;fwd:write")
            = "track-0;run:test;fwd:write")
       (String.split_on_char '\n' folded))

(* --- end-to-end acceptance on binary-tree-2 --- *)

let run_traced mode =
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog =
    Mv_workloads.Benchmarks.program b ~n:b.Mv_workloads.Benchmarks.b_test_n
  in
  match mode with
  | `Native -> Toolchain.run_native ~trace:true prog
  | `Virtual -> Toolchain.run_virtual ~trace:true prog
  | `Multiverse -> Toolchain.run_multiverse ~trace:true (Toolchain.hybridize prog)

let test_critical_path_acceptance () =
  let rs = run_traced `Multiverse in
  let obs = rs.Toolchain.rs_machine.Machine.obs in
  let report = Critical_path.compute (Tracer.spans obs) in
  check_bool "crossings recorded" true (report.Critical_path.rows <> []);
  let f = Critical_path.attributed_fraction report in
  if f < 0.95 then
    Alcotest.failf "attributed %.2f%% of crossing cycles, need >= 95%%"
      (100.0 *. f);
  check_int "no span left open after the run" 0 (Tracer.open_count obs)

let test_folded_all_modes () =
  List.iter
    (fun (name, mode) ->
      let rs = run_traced mode in
      let folded = Export.folded rs.Toolchain.rs_machine.Machine.obs in
      check_bool (name ^ ": folded output non-empty") true
        (String.length folded > 0))
    [ ("native", `Native); ("virtual", `Virtual); ("multiverse", `Multiverse) ]

(* QCheck marks property tests `Slow by default; these are cheap. *)
let to_alcotest t =
  let name, _, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("tracer: nesting and ambient parents", `Quick, test_nesting);
    ("tracer: out-of-order close", `Quick, test_out_of_order_close);
    ("tracer: disabled is inert", `Quick, test_disabled_is_inert);
    ("tracer: complete + annotate", `Quick, test_complete_and_annotate);
    ("tracer: capacity bounds retention", `Quick, test_capacity_bounds);
    ("tracer: tracks are isolated", `Quick, test_tracks_isolated);
    to_alcotest qcheck_spans_close_once;
    to_alcotest qcheck_parents_outlive_children;
    ("metrics: registry", `Quick, test_metrics_registry);
    ("critical path: synthetic crossing", `Quick, test_critical_path_synthetic);
    ("chrome export: golden scenario", `Quick, test_golden_chrome);
    ("folded export: synthetic scenario", `Quick, test_folded_synthetic);
    ("critical path: >= 95% attributed (binary-tree-2)", `Quick, test_critical_path_acceptance);
    ("folded export: non-empty in all modes", `Slow, test_folded_all_modes);
  ]
