(* Tests for the HVM and AeroKernel layers: event channels (latencies per
   Figure 2), state superpositions, the Nautilus boot/thread/fault/syscall
   machinery, and HRT<->ROS signaling. *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
module Nautilus = Mv_aerokernel.Nautilus
module Event_channel = Mv_hvm.Event_channel
module Hvm = Mv_hvm.Hvm
module Superposition = Mv_hvm.Superposition

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let costs = Mv_hw.Costs.default

(* Round-trip time of one request/complete cycle through a channel, with
   the server doing zero work, measured from the caller's clock. *)
let measure_rtt ~kind ~ros_core ~hrt_core =
  let machine = Machine.create () in
  let ch = Event_channel.create machine ~kind ~ros_core ~hrt_core in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:ros_core ~name:"server" (fun () ->
         let req = Event_channel.serve_next ch in
         req.Event_channel.req_run ();
         Event_channel.complete ch));
  let rtt = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt_core ~name:"caller" (fun () ->
         let t0 = Exec.local_now machine.Machine.exec in
         Event_channel.call ch { Event_channel.req_kind = "noop"; req_run = (fun () -> ()) };
         rtt := Exec.local_now machine.Machine.exec - t0));
  Sim.run machine.Machine.sim;
  !rtt

let test_channel_async_latency () =
  let rtt = measure_rtt ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7 in
  (* ~25K cycles plus hypercall signaling; must be the right order. *)
  check_bool
    (Printf.sprintf "async rtt %d within 20%% of 25000" rtt)
    true
    (rtt >= costs.Mv_hw.Costs.async_channel_rtt
    && rtt <= costs.Mv_hw.Costs.async_channel_rtt * 12 / 10)

let test_channel_sync_socket_distance () =
  let same = measure_rtt ~kind:Event_channel.Sync ~ros_core:5 ~hrt_core:7 in
  let cross = measure_rtt ~kind:Event_channel.Sync ~ros_core:0 ~hrt_core:7 in
  check_bool "same-socket faster than cross-socket" true (same < cross);
  check_bool "sync orders of magnitude below async" true
    (cross * 10 < costs.Mv_hw.Costs.async_channel_rtt)

let test_channel_queueing () =
  (* Two callers share one server endpoint; both must complete. *)
  let machine = Machine.create () in
  let ch = Event_channel.create machine ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7 in
  let served = ref [] in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"server" (fun () ->
         for _ = 1 to 2 do
           let req = Event_channel.serve_next ch in
           req.Event_channel.req_run ();
           Event_channel.complete ch
         done));
  let caller name =
    Exec.spawn machine.Machine.exec ~cpu:7 ~name (fun () ->
        Event_channel.call ch
          { Event_channel.req_kind = name; req_run = (fun () -> served := name :: !served) })
  in
  ignore (caller "a");
  ignore (caller "b");
  Sim.run machine.Machine.sim;
  Alcotest.(check (list string)) "both served in order" [ "a"; "b" ] (List.rev !served)

let test_channel_post_fire_and_forget () =
  let machine = Machine.create () in
  let ch = Event_channel.create machine ~kind:Event_channel.Async ~ros_core:0 ~hrt_core:7 in
  let got = ref false in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"server" (fun () ->
         let req = Event_channel.serve_next ch in
         req.Event_channel.req_run ();
         Event_channel.complete ch (* no-op for posts *)));
  Event_channel.post ch { Event_channel.req_kind = "poison"; req_run = (fun () -> got := true) };
  Sim.run machine.Machine.sim;
  check_bool "posted request served" true !got

(* --- Nautilus --- *)

let boot_nk () =
  let machine = Machine.create () in
  let nk = Nautilus.create machine in
  let done_ = ref false in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"booter" (fun () ->
         Nautilus.boot nk;
         done_ := true));
  Sim.run machine.Machine.sim;
  check_bool "booted" true (!done_ && Nautilus.booted nk);
  (machine, nk)

let test_nk_boot_takes_milliseconds () =
  let machine = Machine.create () in
  let nk = Nautilus.create machine in
  let took = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"booter" (fun () ->
         let t0 = Exec.local_now machine.Machine.exec in
         Nautilus.boot nk;
         took := Exec.local_now machine.Machine.exec - t0));
  Sim.run machine.Machine.sim;
  check_bool "boot ~milliseconds" true
    (Mv_util.Cycles.to_ms !took >= 1.0 && Mv_util.Cycles.to_ms !took < 100.0)

let test_nk_cpu_setup () =
  let machine = Machine.create () in
  let nk = Nautilus.create machine in
  ignore nk;
  let hrt_core = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let cpu = machine.Machine.cpus.(hrt_core) in
  check_int "ring 0" 0 cpu.Mv_hw.Cpu.ring;
  check_bool "CR0.WP set (Section 4.4)" true cpu.Mv_hw.Cpu.cr0_wp;
  check_bool "IST configured (red-zone fix)" true cpu.Mv_hw.Cpu.ist_configured

let test_nk_thread_creation_cheap () =
  let machine, nk = boot_nk () in
  let ros_cost = ref 0 and nk_cost = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"requester" (fun () ->
         let t0 = Exec.local_now machine.Machine.exec in
         let th = Nautilus.request_create_thread nk ~name:"hrt-t" (fun () -> ()) in
         nk_cost := Exec.local_now machine.Machine.exec - t0;
         Nautilus.join_thread nk th;
         ros_cost := Mv_hw.Costs.default.Mv_hw.Costs.thread_create_ros));
  Sim.run machine.Machine.sim;
  check_bool "nk thread creation far below Linux clone" true (!nk_cost * 4 < !ros_cost);
  check_int "thread tracked" 1 (Nautilus.thread_count nk)

let test_nk_nested_threads () =
  let machine, nk = boot_nk () in
  let order = ref [] in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"requester" (fun () ->
         let top =
           Nautilus.request_create_thread nk ~name:"top" (fun () ->
               let nested =
                 Nautilus.create_thread_local nk ~name:"nested" (fun () ->
                     order := "nested" :: !order)
               in
               Nautilus.join_thread nk nested;
               order := "top" :: !order)
         in
         Nautilus.join_thread nk top));
  Sim.run machine.Machine.sim;
  Alcotest.(check (list string)) "nested completes before top" [ "nested"; "top" ]
    (List.rev !order);
  check_int "both tracked" 2 (Nautilus.thread_count nk)

let test_nk_fault_forwarding_and_remerge () =
  let machine, nk = boot_nk () in
  let ros_pt = Mv_hw.Page_table.create () in
  let flags = Mv_hw.Page_table.(f_present lor f_writable lor f_user) in
  (* Give the ROS one mapping so slot 0 is populated at merge time. *)
  Mv_hw.Page_table.map ros_pt 0x1000 ~frame:1 ~flags;
  let forwards = ref [] in
  Nautilus.set_services nk
    {
      Nautilus.svc_forward_fault =
        (fun addr ~write ->
          forwards := (addr, write) :: !forwards;
          (* "The ROS handles it": install the mapping. *)
          Mv_hw.Page_table.map ros_pt (Mv_hw.Addr.align_down addr) ~frame:7 ~flags;
          Nautilus.Fault_fixed);
      svc_forward_syscall = (fun _ run -> run ());
      svc_request_remerge = (fun () -> ros_pt);
    };
  let hrt_core = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt_core ~name:"hrt" (fun () ->
         Nautilus.merge_lower_half nk ~from:ros_pt;
         (* Merged mapping is visible with no fault. *)
         Nautilus.access nk 0x1000 ~write:false;
         check_int "no forward yet" 0 (List.length !forwards);
         (* A page in an already-shared PML4 slot: one forward fixes it. *)
         Nautilus.access nk 0x2000 ~write:true;
         check_int "one forward" 1 (List.length !forwards);
         check_int "no remerge needed" 0 (Nautilus.stats_remerges nk);
         (* A page under a *fresh* top-level slot: the ROS fixes it but the
            HRT's PML4 copy stays stale -> repeat fault -> re-merge. *)
         let far = Mv_hw.Addr.of_indices ~pml4:3 ~pdpt:0 ~pd:0 ~pt:0 ~offset:0 in
         Nautilus.access nk far ~write:true;
         check_int "re-merge happened" 1 (Nautilus.stats_remerges nk)));
  Sim.run machine.Machine.sim;
  check_bool "faults were forwarded" true (Nautilus.stats_faults_forwarded nk >= 2)

(* Two HRT partitions merged from the same process: the stale-merge
   generation is keyed per Nautilus instance, so one partition's re-merge
   must never mark the other fresh — each detects the ROS's lower-half
   mutation and re-merges on its own. *)
let test_two_hrt_merge_generations () =
  let machine = Machine.create ~hrt_parts:[ 1; 1 ] () in
  let exec = machine.Machine.exec in
  let ros_pt = Mv_hw.Page_table.create () in
  let flags = Mv_hw.Page_table.(f_present lor f_writable lor f_user) in
  Mv_hw.Page_table.map ros_pt 0x1000 ~frame:1 ~flags;
  let nk1 = Nautilus.create ~part:1 machine in
  let nk2 = Nautilus.create ~part:2 machine in
  let services =
    {
      Nautilus.svc_forward_fault = (fun _ ~write:_ -> Nautilus.Fault_fixed);
      svc_forward_syscall = (fun _ run -> run ());
      svc_request_remerge = (fun () -> ros_pt);
    }
  in
  Nautilus.set_services nk1 services;
  Nautilus.set_services nk2 services;
  let c1 = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  ignore
    (Exec.spawn exec ~cpu:c1 ~name:"driver" (fun () ->
         Nautilus.merge_lower_half nk1 ~from:ros_pt;
         Nautilus.merge_lower_half nk2 ~from:ros_pt;
         Nautilus.access nk1 0x1000 ~write:false;
         Nautilus.access nk2 0x1000 ~write:false;
         check_int "nk1 fresh after merge" 0 (Nautilus.stats_remerges nk1);
         check_int "nk2 fresh after merge" 0 (Nautilus.stats_remerges nk2);
         (* The ROS installs a mapping under a fresh top-level slot,
            bumping the lower-half generation both copies snapshotted. *)
         let far = Mv_hw.Addr.of_indices ~pml4:3 ~pdpt:0 ~pd:0 ~pt:0 ~offset:0 in
         Mv_hw.Page_table.map ros_pt far ~frame:9 ~flags;
         Nautilus.access nk1 far ~write:true;
         check_int "nk1 re-merged" 1 (Nautilus.stats_remerges nk1);
         check_int "nk1's re-merge must not refresh nk2" 0
           (Nautilus.stats_remerges nk2);
         Nautilus.access nk2 far ~write:true;
         check_int "nk2 re-merged independently" 1 (Nautilus.stats_remerges nk2);
         check_int "nk1 unaffected by nk2's re-merge" 1
           (Nautilus.stats_remerges nk1)));
  Sim.run machine.Machine.sim;
  check_bool "no forwarding needed: both were generation-stale re-merges" true
    (Nautilus.stats_faults_forwarded nk1 = 0
    && Nautilus.stats_faults_forwarded nk2 = 0)

let test_nk_higher_half_fault_fatal () =
  let machine, nk = boot_nk () in
  let hrt_core = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let failed = ref false in
  (* The 1G identity leaves cover all physical memory, so the first
     unmapped higher-half address is just past it. *)
  let phys = machine.Machine.phys in
  let span_pages =
    Mv_hw.Phys_mem.total phys Mv_hw.Phys_mem.Ros_region
    + Mv_hw.Phys_mem.total phys Mv_hw.Phys_mem.Hrt_region
  in
  let span_bytes =
    (span_pages + Mv_hw.Addr.pages_per_1g - 1)
    / Mv_hw.Addr.pages_per_1g * Mv_hw.Addr.page_size_1g
  in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt_core ~name:"hrt" (fun () ->
         (* In-span higher-half accesses hit the identity map... *)
         Nautilus.access nk (Mv_hw.Addr.higher_half_base + 0x5000) ~write:false;
         (* ...but an address beyond it is an AeroKernel bug, not a
            forwardable event. *)
         match
           Nautilus.access nk
             (Mv_hw.Addr.higher_half_base + span_bytes + 0x5000)
             ~write:false
         with
         | () -> ()
         | exception Failure _ -> failed := true));
  Sim.run machine.Machine.sim;
  check_bool "higher-half fault is fatal" true !failed

let test_nk_syscall_stub_costs () =
  let machine, nk = boot_nk () in
  Nautilus.set_services nk
    {
      Nautilus.svc_forward_fault = (fun _ ~write:_ -> Nautilus.Fault_fixed);
      svc_forward_syscall = (fun _ run -> run ());
      svc_request_remerge = (fun () -> Mv_hw.Page_table.create ());
    };
  let hrt_core = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
  let cost = ref 0 in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:hrt_core ~name:"hrt" (fun () ->
         let t0 = Exec.local_now machine.Machine.exec in
         Nautilus.syscall nk ~name:"getpid" (fun () -> ());
         cost := Exec.local_now machine.Machine.exec - t0));
  Sim.run machine.Machine.sim;
  (* trap + red-zone pull + SYSRET emulation *)
  let expected =
    costs.Mv_hw.Costs.syscall_trap + costs.Mv_hw.Costs.redzone_stack_pull
    + costs.Mv_hw.Costs.sysret_emulation
  in
  check_int "stub cost" expected !cost;
  check_int "counted" 1 (Nautilus.stats_syscalls_forwarded nk)

(* --- HVM --- *)

let mk_hvm () =
  let machine = Machine.create () in
  let ros = Mv_ros.Kernel.create machine in
  let hvm = Hvm.create machine ~ros in
  (machine, ros, hvm)

let test_hvm_marks_ros_virtualized () =
  let _machine, ros, _hvm = mk_hvm () in
  check_bool "ros runs as a guest" true ros.Mv_ros.Kernel.virtualized

let test_hvm_install_boot () =
  let machine, _ros, hvm = mk_hvm () in
  let nk = Nautilus.create machine in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"app" (fun () ->
         Hvm.install_hrt_image hvm ~image_kb:640 nk;
         Hvm.boot_hrt hvm));
  Sim.run machine.Machine.sim;
  check_bool "booted" true (Nautilus.booted nk);
  check_bool "hypercalls counted" true (Hvm.hypercalls hvm >= 2)

let test_hvm_boot_without_image_fails () =
  let machine, _ros, hvm = mk_hvm () in
  let failed = ref false in
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:0 ~name:"app" (fun () ->
         match Hvm.boot_hrt hvm with () -> () | exception Failure _ -> failed := true));
  Sim.run machine.Machine.sim;
  check_bool "refused" true !failed

let test_superposition_thread_state () =
  let machine, ros, hvm = mk_hvm () in
  let nk = Nautilus.create machine in
  let p = ref None in
  ignore
    (Mv_ros.Kernel.spawn_process ros ~name:"app" (fun proc ->
         p := Some proc;
         Hvm.install_hrt_image hvm ~image_kb:640 nk;
         Hvm.boot_hrt hvm;
         let hrt_core = List.hd (Mv_hw.Topology.cores_of machine.Machine.topo 1) in
         check_bool "not superimposed yet" false
           (Superposition.verify_superposition nk proc ~core:hrt_core);
         let th = Hvm.hrt_create_thread hvm proc ~name:"t" (fun () -> ()) in
         check_bool "GDT and %fs mirrored" true
           (Superposition.verify_superposition nk proc ~core:hrt_core);
         Exec.join machine.Machine.exec th));
  Sim.run machine.Machine.sim;
  check_bool "ran" true (!p <> None)

let test_hvm_signal_to_ros_latency () =
  let machine, _ros, hvm = mk_hvm () in
  let fired_at = ref 0 in
  Hvm.register_ros_signal hvm ~handler:(fun _ -> fired_at := Sim.now machine.Machine.sim);
  ignore
    (Exec.spawn machine.Machine.exec ~cpu:7 ~name:"hrt" (fun () ->
         Exec.charge machine.Machine.exec 100;
         Hvm.raise_signal_to_ros hvm ~payload:1));
  Sim.run machine.Machine.sim;
  (* ~11 us injection latency (paper, Section 2). *)
  check_bool "async signal latency ~11us" true
    (Mv_util.Cycles.to_us !fired_at >= 10.0 && Mv_util.Cycles.to_us !fired_at < 14.0)

let suite =
  [
    ("event channel: async RTT (Fig 2)", `Quick, test_channel_async_latency);
    ("event channel: sync socket distance (Fig 2)", `Quick, test_channel_sync_socket_distance);
    ("event channel: queued callers", `Quick, test_channel_queueing);
    ("event channel: post", `Quick, test_channel_post_fire_and_forget);
    ("nautilus: boot in milliseconds", `Quick, test_nk_boot_takes_milliseconds);
    ("nautilus: ring0/WP/IST setup", `Quick, test_nk_cpu_setup);
    ("nautilus: cheap thread creation", `Quick, test_nk_thread_creation_cheap);
    ("nautilus: nested threads", `Quick, test_nk_nested_threads);
    ("nautilus: fault forwarding + PML4 re-merge", `Quick, test_nk_fault_forwarding_and_remerge);
    ("nautilus: per-partition merge generations", `Quick, test_two_hrt_merge_generations);
    ("nautilus: higher-half fault fatal", `Quick, test_nk_higher_half_fault_fatal);
    ("nautilus: syscall stub cost", `Quick, test_nk_syscall_stub_costs);
    ("hvm: ROS marked virtualized", `Quick, test_hvm_marks_ros_virtualized);
    ("hvm: install + boot", `Quick, test_hvm_install_boot);
    ("hvm: boot without image fails", `Quick, test_hvm_boot_without_image_fails);
    ("hvm: GDT/TLS superposition", `Quick, test_superposition_thread_state);
    ("hvm: HRT-to-ROS signal latency", `Quick, test_hvm_signal_to_ros_latency);
  ]
