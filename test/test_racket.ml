(* Tests for the Racket-style runtime: reader, value encodings, the
   SenoraGC collector (liveness properties, write barrier, segment
   recycling), compiler + VM semantics, and engine startup profile. *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
open Mv_racket

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Sexp --- *)

let test_sexp_atoms () =
  let open Sexp in
  Alcotest.(check bool) "int" true (parse_one "42" = Atom_int 42);
  Alcotest.(check bool) "negative" true (parse_one "-7" = Atom_int (-7));
  Alcotest.(check bool) "float" true (parse_one "3.25" = Atom_float 3.25);
  Alcotest.(check bool) "sym" true (parse_one "foo-bar!" = Atom_sym "foo-bar!");
  Alcotest.(check bool) "string" true (parse_one {|"a\nb"|} = Atom_string "a\nb");
  Alcotest.(check bool) "true" true (parse_one "#t" = Atom_bool true);
  Alcotest.(check bool) "char" true (parse_one {|#\a|} = Atom_char 'a');
  Alcotest.(check bool) "space char" true (parse_one {|#\space|} = Atom_char ' ')

let test_sexp_lists_and_sugar () =
  let open Sexp in
  (match parse_one "(+ 1 (* 2 3))" with
  | List [ Atom_sym "+"; Atom_int 1; List [ Atom_sym "*"; Atom_int 2; Atom_int 3 ] ] -> ()
  | d -> Alcotest.failf "bad parse: %s" (to_string d));
  (match parse_one "'(a b)" with
  | List [ Atom_sym "quote"; List [ Atom_sym "a"; Atom_sym "b" ] ] -> ()
  | d -> Alcotest.failf "bad quote: %s" (to_string d));
  check_int "two datums" 2 (List.length (parse_all "1 2"))

let test_sexp_comments () =
  let src = "; line comment\n(a #| block #| nested |# comment |# b)" in
  match Sexp.parse_all src with
  | [ Sexp.List [ Sexp.Atom_sym "a"; Sexp.Atom_sym "b" ] ] -> ()
  | _ -> Alcotest.fail "comments mishandled"

let test_sexp_errors () =
  let bad s = match Sexp.parse_all s with
    | exception Sexp.Parse_error _ -> true
    | _ -> false
  in
  check_bool "unterminated list" true (bad "(a b");
  check_bool "unterminated string" true (bad {|"abc|});
  check_bool "stray paren" true (bad ")")

let qcheck_sexp_roundtrip =
  let rec gen_sexp depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [ map (fun n -> Sexp.Atom_int n) small_signed_int;
          map (fun s -> Sexp.Atom_sym ("s" ^ string_of_int (abs s))) small_int;
          map (fun b -> Sexp.Atom_bool b) bool ]
    else
      frequency
        [ (3, gen_sexp 0);
          (1, map (fun l -> Sexp.List l) (list_size (int_bound 4) (gen_sexp (depth - 1)))) ]
  in
  QCheck.Test.make ~name:"sexp: print/parse roundtrip"
    (QCheck.make (gen_sexp 3))
    (fun d ->
      match Sexp.parse_all (Sexp.to_string d) with [ d' ] -> d = d' | _ -> false)

(* --- fixtures: a guest environment to host heap/VM tests --- *)

let in_guest f =
  let machine = Machine.create () in
  let k = Mv_ros.Kernel.create machine in
  let result = ref None in
  ignore
    (Mv_ros.Kernel.spawn_process k ~name:"guest" (fun p ->
         let env = Mv_guest.Env.native k p in
         result := Some (f env p)));
  Sim.run machine.Machine.sim;
  match !result with Some r -> r | None -> Alcotest.fail "guest did not run"

(* --- Value encodings --- *)

let test_value_immediates () =
  check_int "fixnum roundtrip" 12345 Value.(fixnum_val (fixnum 12345));
  check_int "negative fixnum" (-99) Value.(fixnum_val (fixnum (-99)));
  check_bool "fixnum tagged" true (Value.is_fixnum (Value.fixnum 0));
  check_bool "nil distinct from false" true (Value.nil <> Value.vfalse);
  check_bool "truthiness" true Value.(is_truthy nil && is_truthy vtrue && not (is_truthy vfalse));
  Alcotest.(check char) "char" 'Z' Value.(char_val (char_v 'Z'));
  check_int "symbol id" 7 Value.(sym_id (sym 7));
  check_int "port id" 3 Value.(port_id (port_v 3))

let qcheck_value_fixnum =
  QCheck.Test.make ~name:"value: fixnum roundtrip over range"
    QCheck.(int_range (-(1 lsl 59)) (1 lsl 59))
    (fun n -> Value.fixnum_val (Value.fixnum n) = n && Value.is_fixnum (Value.fixnum n))

let test_value_heap_objects () =
  in_guest (fun env _p ->
      let gc = Sgc.create env () in
      Value.register_scannable gc;
      let p = Value.cons gc (Value.fixnum 1) (Value.fixnum 2) in
      check_bool "pair" true (Value.is_pair gc p);
      check_int "car" 1 (Value.fixnum_val (Value.car gc p));
      check_int "cdr" 2 (Value.fixnum_val (Value.cdr gc p));
      Value.set_car gc p (Value.fixnum 9);
      check_int "set-car!" 9 (Value.fixnum_val (Value.car gc p));
      let v = Value.make_vector gc 5 (Value.fixnum 0) in
      Value.vector_set gc v 3 (Value.fixnum 42);
      check_int "vector" 42 (Value.fixnum_val (Value.vector_ref gc v 3));
      check_int "vector len" 5 (Value.vector_length gc v);
      let s = Value.string_v gc "hello, world" in
      check_string "string roundtrip" "hello, world" (Value.string_val gc s);
      Alcotest.(check char) "string-ref" 'w' (Value.string_ref gc s 7);
      Value.string_set gc s 0 'H';
      check_string "string-set!" "Hello, world" (Value.string_val gc s);
      let f = Value.flonum gc 3.14159 in
      Alcotest.(check (float 1e-12)) "flonum" 3.14159 (Value.flonum_val gc f);
      let neg = Value.flonum gc (-0.5e-300) in
      Alcotest.(check (float 0.)) "flonum bits exact" (-0.5e-300) (Value.flonum_val gc neg);
      let b = Value.box_v gc (Value.fixnum 5) in
      Value.set_box gc b s;
      check_bool "box holds string" true (Value.is_string gc (Value.unbox gc b));
      let lst = Value.list_of gc [ Value.fixnum 1; Value.fixnum 2; Value.fixnum 3 ] in
      check_int "list length" 3 (List.length (Value.to_list gc lst));
      check_bool "equal? structural" true
        (Value.equal gc lst (Value.list_of gc [ Value.fixnum 1; Value.fixnum 2; Value.fixnum 3 ])))

(* --- Sgc --- *)

let test_sgc_collects_garbage () =
  in_guest (fun env _p ->
      let gc = Sgc.create env ~threshold:16_384 () in
      Value.register_scannable gc;
      (* One rooted list survives; masses of garbage pairs do not. *)
      let root = ref (Value.cons gc (Value.fixnum 1) Value.nil) in
      Sgc.set_roots gc (fun visit -> visit !root);
      for _ = 1 to 20_000 do
        ignore (Value.cons gc (Value.fixnum 0) Value.nil)
      done;
      check_bool "collections happened" true ((Sgc.stats gc).Sgc.collections > 0);
      Sgc.collect gc;
      check_bool "live set stays small" true (Sgc.live_bytes gc < 4096);
      (* The rooted object is intact. *)
      check_int "root survived" 1 (Value.fixnum_val (Value.car gc !root)))

let test_sgc_reachability_preserved () =
  in_guest (fun env _p ->
      let gc = Sgc.create env ~threshold:8_192 () in
      Value.register_scannable gc;
      (* A deep structure: every element must survive arbitrary GC. *)
      let root = ref Value.nil in
      Sgc.set_roots gc (fun visit -> visit !root);
      for i = 1 to 5_000 do
        root := Value.cons gc (Value.fixnum i) !root
      done;
      Sgc.collect gc;
      let rec check_list i v =
        if i = 0 then check_bool "end" true (v = Value.nil)
        else begin
          check_bool "still a pair" true (Value.is_pair gc v);
          if Value.fixnum_val (Value.car gc v) <> i then
            Alcotest.failf "corrupted element %d" i;
          check_list (i - 1) (Value.cdr gc v)
        end
      in
      check_list 5_000 !root)

let qcheck_sgc_model =
  (* Model-based: interleave allocations, mutations and forced GCs; every
     value reachable from the root array must match the model. *)
  QCheck.Test.make ~name:"sgc: reachable data survives collections" ~count:30
    QCheck.(list (pair (int_bound 9) (int_bound 1000)))
    (fun ops ->
      in_guest (fun env _p ->
          let gc = Sgc.create env ~threshold:4_096 () in
          Value.register_scannable gc;
          let nroots = 8 in
          let roots = Array.make nroots Value.nil in
          let model = Array.make nroots [] in
          Sgc.set_roots gc (fun visit -> Array.iter visit roots);
          List.iter
            (fun (slot, v) ->
              let slot = slot mod nroots in
              match v mod 3 with
              | 0 ->
                  (* push onto a root list *)
                  roots.(slot) <- Value.cons gc (Value.fixnum v) roots.(slot);
                  model.(slot) <- v :: model.(slot)
              | 1 ->
                  (* drop a root list (make garbage) *)
                  roots.(slot) <- Value.nil;
                  model.(slot) <- []
              | _ -> Sgc.collect gc)
            ops;
          Sgc.collect gc;
          Array.for_all2
            (fun v expected ->
              let actual = List.map Value.fixnum_val (Value.to_list gc v) in
              actual = expected)
            roots model))

let test_sgc_write_barrier () =
  in_guest (fun env p ->
      let gc = Sgc.create env () in
      Value.register_scannable gc;
      Sgc.install_barrier gc;
      let root = ref (Value.cons gc (Value.fixnum 1) Value.nil) in
      Sgc.set_roots gc (fun visit -> visit !root);
      Sgc.collect gc;
      (* Post-GC pages are protected; the first mutation trips SIGSEGV. *)
      let faults0 = (Sgc.stats gc).Sgc.barrier_faults in
      Value.set_car gc !root (Value.fixnum 2);
      check_int "one barrier fault" (faults0 + 1) (Sgc.stats gc).Sgc.barrier_faults;
      Value.set_car gc !root (Value.fixnum 3);
      check_int "page now unprotected" (faults0 + 1) (Sgc.stats gc).Sgc.barrier_faults;
      check_int "mutation landed" 3 (Value.fixnum_val (Value.car gc !root));
      (* The barrier ran through the kernel signal machinery. *)
      check_bool "rt_sigreturn counted" true
        (Mv_util.Histogram.count p.Mv_ros.Process.syscall_counts "rt_sigreturn" >= 1))

let test_sgc_segments_unmapped () =
  in_guest (fun env p ->
      let gc = Sgc.create env ~segment_pages:16 ~threshold:(1 lsl 30) () in
      Value.register_scannable gc;
      Sgc.set_roots gc (fun _ -> ());
      (* Fill several segments with garbage, then collect: empty segments
         go back to the OS with munmap (Figure 12's pattern). *)
      for _ = 1 to 40_000 do
        ignore (Value.cons gc (Value.fixnum 0) Value.nil)
      done;
      let mapped_before = Sgc.mapped_bytes gc in
      Sgc.collect gc;
      check_bool "segments released" true (Sgc.mapped_bytes gc < mapped_before);
      check_bool "munmap syscalls issued" true
        (Mv_util.Histogram.count p.Mv_ros.Process.syscall_counts "munmap" > 0);
      check_bool "unmap stat" true ((Sgc.stats gc).Sgc.segments_unmapped > 0))

let test_sgc_free_list_reuse () =
  in_guest (fun env _p ->
      let gc = Sgc.create env ~threshold:(1 lsl 30) () in
      Value.register_scannable gc;
      let root = ref Value.nil in
      Sgc.set_roots gc (fun visit -> visit !root);
      (* Allocate a keeper between two garbage objects so its segment
         cannot be unmapped; the garbage slots must be reused. *)
      ignore (Value.cons gc (Value.fixnum 0) Value.nil);
      root := Value.cons gc (Value.fixnum 42) Value.nil;
      ignore (Value.cons gc (Value.fixnum 0) Value.nil);
      let mapped = Sgc.mapped_bytes gc in
      Sgc.collect gc;
      for _ = 1 to 1000 do
        ignore (Value.cons gc (Value.fixnum 1) Value.nil);
        Sgc.collect gc
      done;
      check_int "heap did not grow" mapped (Sgc.mapped_bytes gc);
      check_int "keeper intact" 42 (Value.fixnum_val (Value.car gc !root)))

(* --- compiler + VM --- *)

let eval_in_guest src =
  in_guest (fun env _p ->
      let engine = Engine.start env in
      let v = Engine.eval_string engine src in
      let s = Vm.write_string_of (Engine.vm engine) v in
      Engine.finish engine;
      s)

let check_eval expected src = check_string src expected (eval_in_guest src)

let test_eval_basics () =
  check_eval "42" "42";
  check_eval "7" "(+ 3 4)";
  check_eval "10" "(- 20 5 5)";
  check_eval "-5" "(- 5)";
  check_eval "2.5" "(/ 5 2)";
  check_eval "3" "(/ 6 2)";
  check_eval "8" "(expt 2 3)";
  check_eval "#t" "(< 1 2 3)";
  check_eval "#f" "(< 1 3 2)";
  check_eval "3" "(if #t 3 4)";
  check_eval "4" "(if #f 3 4)";
  check_eval "3" "(if 0 3 4)" (* 0 is truthy in Scheme *)

let test_eval_bindings () =
  check_eval "25" "(let ((x 5)) (* x x))";
  check_eval "11" "(let* ((x 5) (y (+ x 1))) (+ x y))";
  check_eval "120" "(letrec ((f (lambda (n) (if (= n 0) 1 (* n (f (- n 1))))))) (f 5))";
  check_eval "3" "(define x 3) x";
  check_eval "9" "(define (sq n) (* n n)) (sq 3)";
  check_eval "7" "(define x 3) (set! x 7) x";
  check_eval "10" "(define (f) (define a 4) (define b 6) (+ a b)) (f)"

let test_eval_closures () =
  check_eval "15" "(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)";
  check_eval "3" "(define (counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n))) (define c (counter)) (c) (c) (c)";
  check_eval "55" "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)"

let test_eval_tail_calls () =
  (* A million-iteration loop must not overflow anything. *)
  check_eval "1000000"
    "(let loop ((i 0)) (if (= i 1000000) i (loop (+ i 1))))";
  check_eval "500000500000"
    "(let loop ((i 0) (acc 0)) (if (> i 1000000) acc (loop (+ i 1) (+ acc i))))"

let test_eval_data () =
  check_eval "(1 2 3)" "(list 1 2 3)";
  check_eval "(1 . 2)" "(cons 1 2)";
  check_eval "3" "(length '(a b c))";
  check_eval "(3 2 1)" "(reverse '(1 2 3))";
  check_eval "(1 2 3 4)" "(append '(1 2) '(3 4))";
  check_eval "(b c)" "(memq 'b '(a b c))";
  check_eval "#(0 0 5)" "(define v (make-vector 3 0)) (vector-set! v 2 5) v";
  check_eval "\"abcdef\"" "(string-append \"abc\" \"def\")";
  check_eval "\"bc\"" "(substring \"abcd\" 1 3)";
  check_eval "(1 4 9)" "(map (lambda (x) (* x x)) '(1 2 3))";
  check_eval "6" "(fold-left + 0 '(1 2 3))";
  check_eval "10" "(apply + '(1 2 3 4))";
  check_eval "#\\c" "(string-ref \"abc\" 2)";
  check_eval "99" "(char->integer #\\c)"

let test_eval_control () =
  check_eval "two" {|(case 2 ((1) 'one) ((2) 'two) (else 'other))|};
  check_eval "big" {|(cond ((> 5 10) 'small) ((> 5 1) 'big) (else 'none))|};
  check_eval "45" "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 10) acc))";
  check_eval "#t" "(and 1 2 #t)";
  check_eval "2" "(or #f 2 3)";
  check_eval "yes" "(when (> 2 1) 'yes)";
  check_eval "yes" "(unless (< 2 1) 'yes)"

let test_eval_numeric_tower () =
  check_eval "5.0" "(+ 2 3.0)";
  check_eval "1.5" "(* 0.5 3)";
  check_eval "2" "(sqrt 4)";
  check_eval "1.41421356237" "(sqrt 2.0)";
  check_eval "3" "(inexact->exact 3.7)";
  check_eval "\"0.333333333\"" "(real->decimal-string (/ 1.0 3.0) 9)";
  check_eval "1" "(modulo -5 3)";
  check_eval "-2" "(remainder -5 3)"

let test_eval_errors () =
  let raises src =
    match eval_in_guest src with
    | exception Alcotest.Test_error -> false
    | _ -> false
    | exception _ -> true
  in
  check_bool "car of non-pair" true (raises "(car 5)");
  check_bool "arity mismatch" true (raises "((lambda (x) x) 1 2)");
  check_bool "undefined global" true (raises "undefined-thing");
  check_bool "vector bounds" true (raises "(vector-ref (make-vector 2 0) 5)");
  check_bool "division by zero" true (raises "(quotient 1 0)");
  check_bool "user error" true (raises {|(error "boom")|})

let test_eval_gc_under_pressure () =
  (* Allocation-heavy nested data with live working set: exercises GC
     while the VM stack holds intermediate references. *)
  check_eval "275"
    "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))\n\
     (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))\n\
     (let loop ((i 0) (best 0))\n\
       (if (= i 50) best (loop (+ i 1) (max best (sum (build 100))))))\n\
     (let ((keep (build 100)))\n\
       (let loop ((i 0)) (if (= i 200) (void) (begin (build 50) (loop (+ i 1)))))\n\
       (* 5 (sum (build 10)) (if (pair? keep) 1 0) (if (= (sum keep) 5050) 1 0)))\n\
     "

(* --- engine --- *)

let test_engine_startup_profile () =
  in_guest (fun env p ->
      let _engine = Engine.start env in
      let h = p.Mv_ros.Process.syscall_counts in
      let c name = Mv_util.Histogram.count h name in
      (* Figure 11's shape: mmap dominates (libs + heap + JIT), with the
         dynamic-linker open/read/fstat/close cluster, the GC's
         rt_sigaction/rt_sigprocmask, and stat for the collects paths. *)
      check_bool "mmap cluster" true (c "mmap" >= 8);
      check_int "six libs opened" 6 (c "open");
      check_int "six libs read" 6 (c "read");
      check_int "six libs fstat" 6 (c "fstat");
      check_int "closed" 6 (c "close");
      check_int "sigaction for GC barrier" 1 (c "rt_sigaction");
      check_int "sigprocmask pair" 2 (c "rt_sigprocmask");
      check_bool "collects stats" true (c "stat" >= 6);
      check_int "timer" 1 (c "setitimer"))

let test_engine_repl () =
  let machine = Machine.create () in
  let k = Mv_ros.Kernel.create machine in
  let p =
    Mv_ros.Kernel.spawn_process k ~name:"repl" (fun p ->
        let env = Mv_guest.Env.native k p in
        let engine = Engine.start env in
        Engine.repl engine)
  in
  Mv_ros.Vfs.feed p.Mv_ros.Process.stdin "(+ 1 2)\n(define x 10)\n(* x x)\n";
  Mv_ros.Vfs.close_stream p.Mv_ros.Process.stdin;
  Sim.run machine.Machine.sim;
  let out = Mv_ros.Process.stdout_contents p in
  check_string "repl transcript" "> 3\n> > 100\n> \n" out

let test_engine_tick_syscalls () =
  in_guest (fun env p ->
      let engine = Engine.start env in
      let before = Mv_util.Histogram.count p.Mv_ros.Process.syscall_counts "gettimeofday" in
      ignore (Engine.eval_string engine "(let loop ((i 0)) (if (= i 300000) i (loop (+ i 1))))");
      let after = Mv_util.Histogram.count p.Mv_ros.Process.syscall_counts "gettimeofday" in
      (* The green-thread scheduler checks the clock as the program runs. *)
      check_bool "timer chatter while running" true (after - before > 5))

(* --- places (parallel Scheme; paper future work) --- *)

let test_places_roundtrip () =
  let out =
    eval_in_guest
      {|
(define p (place-spawn "(place-send 0 (list 'hi 42 \"str\" 3.5 #\\x '(1 2)))"))
(define msg (place-receive p))
(place-wait p)
msg
|}
  in
  check_string "message deep-copied across heaps" {|(hi 42 "str" 3.5 #\x (1 2))|} out

let test_places_bidirectional () =
  let out =
    eval_in_guest
      {|
(define doubler "(let loop ()
                   (let ((v (place-receive 0)))
                     (unless (eq? v 'stop)
                       (place-send 0 (* 2 v))
                       (loop))))")
(define p (place-spawn doubler))
(place-send p 21)
(define a (place-receive p))
(place-send p 100)
(define b (place-receive p))
(place-send p 'stop)
(place-wait p)
(list a b)
|}
  in
  check_string "request/response pairs" "(42 200)" out

let test_places_parallel_speedup () =
  let worker =
    "(define s (let loop ((i 0) (acc 0)) (if (= i 200000) acc (loop (+ i 1) (+ acc i))))) \
     (place-send 0 s)"
  in
  let par =
    Printf.sprintf
      "(define p1 (place-spawn %S)) (define p2 (place-spawn %S)) \
       (+ (place-receive p1) (place-receive p2))"
      worker worker
  in
  let ser =
    "(define (work) (let loop ((i 0) (acc 0)) (if (= i 200000) acc (loop (+ i 1) (+ acc i))))) \
     (+ (work) (work))"
  in
  let time src =
    let machine = Machine.create () in
    let k = Mv_ros.Kernel.create machine in
    let out = ref "" in
    let p =
      Mv_ros.Kernel.spawn_process k ~name:"places" (fun p ->
          let env = Mv_guest.Env.native k p in
          let engine = Engine.start env in
          out := Vm.write_string_of (Engine.vm engine) (Engine.eval_string engine src))
    in
    Sim.run machine.Machine.sim;
    (!out, Mv_ros.Kernel.runtime_of k p)
  in
  let out_p, w_p = time par in
  let out_s, w_s = time ser in
  check_string "same sum" out_s out_p;
  (* Two ROS cores run the places concurrently: close to 2x. *)
  check_bool "parallel speedup > 1.6x" true
    (float_of_int w_s /. float_of_int w_p > 1.6)

let test_places_not_transferable () =
  (* Sending a closure must raise, not corrupt the other heap. *)
  let raised =
    match
      eval_in_guest
        {|(define p (place-spawn "(place-receive 0)")) (place-send p (lambda (x) x))|}
    with
    | _ -> false
    | exception _ -> true
  in
  check_bool "closures are not transferable" true raised

(* --- file ports --- *)

let test_ports_write_read_roundtrip () =
  let out =
    eval_in_guest
      {|
(define o (open-output-file "/tmp/out.scm"))
(display "line one" o) (newline o)
(write '(1 "two" #\3) o) (newline o)
(close-output-port o)
(define i (open-input-file "/tmp/out.scm"))
(define l1 (read-line i))
(define l2 (read-line i))
(define l3 (read-line i))
(close-input-port i)
(list l1 l2 (eof-object? l3) (port? i) (port? l1))
|}
  in
  check_string "file roundtrip" {|("line one" "(1 \"two\" #\\3)" #t #t #f)|} out

let test_ports_read_char () =
  let out =
    eval_in_guest
      {|
(define o (open-output-file "/tmp/chars"))
(write-string "ab" o)
(close-port o)
(define i (open-input-file "/tmp/chars"))
(define a (read-char i))
(define b (read-char i))
(define c (read-char i))
(close-port i)
(list a b (eof-object? c))
|}
  in
  check_string "chars then eof" {|(#\a #\b #t)|} out

let test_ports_errors () =
  let raises src = match eval_in_guest src with _ -> false | exception _ -> true in
  check_bool "missing file" true (raises {|(open-input-file "/no/such/file")|});
  check_bool "closed port" true
    (raises
       {|(define o (open-output-file "/tmp/x")) (close-port o) (display "y" o)|})

let test_prelude_sort_and_hash () =
  check_eval "(1 1 2 3 4 5 6 9)" "(sort '(3 1 4 1 5 9 2 6) <)";
  check_eval "(9 6 5 4 3 2 1 1)" "(sort '(3 1 4 1 5 9 2 6) >)";
  check_eval "()" "(sort '() <)";
  check_eval "(b . 2)" "(assoc 'b '((a . 1) (b . 2)))";
  check_eval "#f" {|(assoc "z" '(("a" . 1)))|};
  (* hash tables: insert enough to force a resize, then look everything up *)
  check_eval "(#t 100 none 64)"
    {|
(define h (make-hash))
(let loop ((i 0))
  (when (< i 64)
    (hash-set! h (number->string i) (* i i))
    (loop (+ i 1))))
(hash-set! h 'key 'sym-value)
(hash-set! h 'key 100)  ; overwrite
(list (hash-has-key? h "63")
      (hash-ref h 'key 'missing)
      (hash-ref h "999" 'none)
      (let loop ((i 0) (ok 0))
        (if (= i 64)
            ok
            (loop (+ i 1)
                  (if (= (hash-ref h (number->string i) -1) (* i i)) (+ ok 1) ok)))))
|}

let suite =
  [
    ("sexp: atoms", `Quick, test_sexp_atoms);
    ("sexp: lists and quote", `Quick, test_sexp_lists_and_sugar);
    ("sexp: comments", `Quick, test_sexp_comments);
    ("sexp: parse errors", `Quick, test_sexp_errors);
    QCheck_alcotest.to_alcotest qcheck_sexp_roundtrip;
    ("value: immediates", `Quick, test_value_immediates);
    QCheck_alcotest.to_alcotest qcheck_value_fixnum;
    ("value: heap objects", `Quick, test_value_heap_objects);
    ("sgc: collects garbage, keeps roots", `Quick, test_sgc_collects_garbage);
    ("sgc: deep reachability preserved", `Quick, test_sgc_reachability_preserved);
    (let name, _, fn = QCheck_alcotest.to_alcotest qcheck_sgc_model in
     (name, `Slow, fn));
    ("sgc: mprotect write barrier", `Quick, test_sgc_write_barrier);
    ("sgc: empty segments munmapped", `Quick, test_sgc_segments_unmapped);
    ("sgc: free-list reuse, no growth", `Quick, test_sgc_free_list_reuse);
    ("eval: arithmetic and conditionals", `Quick, test_eval_basics);
    ("eval: bindings", `Quick, test_eval_bindings);
    ("eval: closures", `Quick, test_eval_closures);
    ("eval: proper tail calls", `Slow, test_eval_tail_calls);
    ("eval: data structures", `Slow, test_eval_data);
    ("eval: control forms", `Quick, test_eval_control);
    ("eval: numeric tower", `Quick, test_eval_numeric_tower);
    ("eval: runtime errors", `Quick, test_eval_errors);
    ("eval: GC under pressure", `Quick, test_eval_gc_under_pressure);
    ("engine: startup syscall profile (Fig 11)", `Quick, test_engine_startup_profile);
    ("engine: REPL", `Quick, test_engine_repl);
    ("engine: scheduler tick syscalls", `Quick, test_engine_tick_syscalls);
    ("places: message roundtrip", `Quick, test_places_roundtrip);
    ("places: bidirectional channel", `Quick, test_places_bidirectional);
    ("places: parallel speedup", `Slow, test_places_parallel_speedup);
    ("places: closures not transferable", `Quick, test_places_not_transferable);
    ("ports: file write/read roundtrip", `Quick, test_ports_write_read_roundtrip);
    ("ports: read-char and EOF", `Quick, test_ports_read_char);
    ("ports: error cases", `Quick, test_ports_errors);
    ("prelude: sort, assoc, hash tables", `Quick, test_prelude_sort_and_hash);
  ]
