(* The host-side domain pool and the determinism contract of parallel
   sweeps:

   - Pool: results merge in submission order whatever the completion
     order; no task is dropped or duplicated; find_first returns the
     lowest-index hit; exceptions propagate (lowest index first).
   - Rng.substream: indexed derivation is read-only on the parent and
     pairwise non-overlapping over long prefixes.
   - Determinism regression: the same (scenario, seed) produces
     byte-identical trace renders and equal metrics snapshots whether
     machines run alone or concurrently on worker domains; the golden
     trace survives the parallel path; Explore.explore_par returns
     exactly Explore.explore's result.
   - mvcheck CLI: `run` exits nonzero when any scenario fails, and still
     reports every scenario after the first failure. *)

module Pool = Mv_host_par.Pool
module Rng = Mv_util.Rng
module Explore = Mv_check.Explore
module Scenarios = Mv_check.Scenarios
module Golden = Mv_check.Golden
module Metrics = Mv_obs.Metrics
module Trace = Mv_engine.Trace
open Multiverse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let to_alcotest t =
  let name, _, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

(* A little data-dependent spinning so completion order differs from
   submission order under real concurrency. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to 100 * (1 + (n mod 17)) do
    acc := !acc + i
  done;
  ignore !acc

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- pool properties --- *)

let qcheck_map_order =
  QCheck.Test.make ~name:"pool: map merges in submission order" ~count:30
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 0 200) small_int))
    (fun (jobs, xs) ->
      let f x =
        spin x;
        (x * 2) + 1
      in
      let xs = Array.of_list xs in
      let expected = Array.map f xs in
      with_pool jobs (fun pool -> Pool.map pool f xs = expected))

let qcheck_map_no_drop_dup =
  QCheck.Test.make ~name:"pool: no task dropped or duplicated" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 0 300))
    (fun (jobs, n) ->
      (* Each task contributes its own index exactly once; the multiset of
         results must be exactly 0..n-1. *)
      let results =
        with_pool jobs (fun pool ->
            Pool.map pool
              (fun i ->
                spin i;
                i)
              (Array.init n (fun i -> i)))
      in
      results = Array.init n (fun i -> i))

let qcheck_find_first_lowest =
  QCheck.Test.make ~name:"pool: find_first returns the lowest-index hit" ~count:50
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 0 120) (int_bound 30)))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x =
        spin x;
        if x mod 7 = 0 then Some (x * 10) else None
      in
      let expected =
        let rec go i =
          if i >= Array.length xs then None
          else match f xs.(i) with Some r -> Some (i, r) | None -> go (i + 1)
        in
        go 0
      in
      with_pool jobs (fun pool -> Pool.find_first pool f xs = expected))

exception Boom of int

let test_map_raises_lowest () =
  with_pool 4 (fun pool ->
      match
        Pool.map pool
          (fun i ->
            spin (17 - i);
            if i >= 5 then raise (Boom i) else i)
          (Array.init 16 (fun i -> i))
      with
      | exception Boom i -> check_int "lowest raising index" 5 i
      | _ -> Alcotest.fail "expected Boom")

let test_run_inline_jobs1 () =
  (* jobs = 1 must not spawn domains and must evaluate inline, in order. *)
  let order = ref [] in
  let r =
    Pool.run ~jobs:1
      (List.init 5 (fun i () ->
           order := i :: !order;
           i * i))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 4; 9; 16 ] r;
  Alcotest.(check (list int)) "inline evaluation order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

(* --- Rng substreams --- *)

let draws rng k = List.init k (fun _ -> Rng.next rng)

let test_substream_read_only () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  ignore (Rng.substream a 0);
  ignore (Rng.substream a 123);
  Alcotest.(check (list int)) "parent stream unperturbed" (draws b 100) (draws a 100)

let test_substream_stable () =
  let sub i = draws (Rng.substream (Rng.create ~seed:7) i) 64 in
  Alcotest.(check (list int)) "same index, same stream" (sub 5) (sub 5);
  check_bool "different index, different stream" true (sub 5 <> sub 6)

let qcheck_substream_nonoverlap =
  QCheck.Test.make
    ~name:"rng: substreams pairwise non-overlapping over 10k draws" ~count:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* 8 substreams, 10k draws each: no 62-bit value may repeat, within
         a stream or across streams (a collision would mean two streams
         walked through the same splitmix64 state). *)
      let root = Rng.create ~seed in
      let seen = Hashtbl.create (8 * 10_000) in
      let ok = ref true in
      for i = 0 to 7 do
        let rng = Rng.substream root i in
        for _ = 1 to 10_000 do
          let x = Rng.next rng in
          if Hashtbl.mem seen x then ok := false else Hashtbl.add seen x ()
        done
      done;
      !ok)

(* --- machine-level determinism across domains --- *)

let traced_run () =
  let b = Mv_workloads.Benchmarks.find "binary-tree-2" in
  let prog = Mv_workloads.Benchmarks.program b ~n:b.Mv_workloads.Benchmarks.b_test_n in
  let rs = Toolchain.run_multiverse ~trace:true (Toolchain.hybridize prog) in
  let render =
    String.concat "\n"
      (List.map
         (fun r ->
           Printf.sprintf "%d [%s] %s" r.Trace.at r.Trace.category r.Trace.message)
         (Trace.records rs.Toolchain.rs_machine.Mv_engine.Machine.trace))
  in
  (render, Metrics.to_list rs.Toolchain.rs_machine.Mv_engine.Machine.metrics)

let test_concurrent_runs_deterministic () =
  let base_render, base_metrics = traced_run () in
  check_bool "trace is non-trivial" true (String.length base_render > 0);
  check_bool "metrics are non-trivial" true (base_metrics <> []);
  (* Four copies of the same run racing on four domains: each must come
     back byte-identical to the run-alone baseline. *)
  let runs = with_pool 4 (fun pool -> Pool.map pool (fun () -> traced_run ()) (Array.make 4 ())) in
  Array.iteri
    (fun i (render, metrics) ->
      check_string (Printf.sprintf "trace render %d is byte-identical" i) base_render render;
      check_bool (Printf.sprintf "metrics snapshot %d is equal" i) true
        (metrics = base_metrics))
    runs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name)
        "golden/multiverse_default.trace";
      "golden/multiverse_default.trace";
      "test/golden/multiverse_default.trace";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let test_golden_through_pool () =
  let expected =
    try read_file golden_path
    with Sys_error _ -> Alcotest.failf "missing %s" golden_path
  in
  (* The canonical traced run, executed on a worker domain while a second
     traced run keeps the other worker busy. *)
  match with_pool 2 (fun pool -> Pool.map pool (fun f -> f ()) [| Golden.trace_string; Golden.trace_string |]) with
  | [| a; b |] ->
      check_string "golden trace on domain 0" expected a;
      check_string "golden trace on domain 1" expected b
  | _ -> assert false

(* --- explore_par ≡ explore --- *)

let scenario name =
  match Scenarios.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let check_explore_equal ~seeds name =
  let sc = scenario name in
  let seq = Explore.explore ~seeds sc in
  let par = with_pool 4 (fun pool -> Explore.explore_par ~pool ~seeds sc) in
  check_int (name ^ ": same ex_runs") seq.Explore.ex_runs par.Explore.ex_runs;
  check_bool (name ^ ": same counterexample") true
    (seq.Explore.ex_counterexample = par.Explore.ex_counterexample)

let test_explore_par_finds_same () = check_explore_equal ~seeds:10 "racy-wakeup"
let test_explore_par_clean_same () = check_explore_equal ~seeds:4 "ping-pong-async"

(* --- the mvcheck CLI exit code --- *)

let mvcheck_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/mvcheck.exe"

let run_mvcheck args =
  let out = Filename.temp_file "mvcheck" ".out" in
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote mvcheck_exe) args (Filename.quote out))
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let test_mvcheck_exit_nonzero_and_full_report () =
  if not (Sys.file_exists mvcheck_exe) then
    Alcotest.failf "mvcheck binary not built at %s" mvcheck_exe;
  (* With zero random seeds the seeded-bug scenarios cannot be found, so
     the sweep must exit 1 — and every scenario must still report, even
     the ones after the first failure. *)
  let code, text = run_mvcheck "run all --seeds 0 --jobs 2" in
  check_int "exit code pins the failure" 1 code;
  List.iter
    (fun sc ->
      check_bool
        (Printf.sprintf "scenario %s reported" sc.Mv_check.Scenario.sc_name)
        true
        (List.exists
           (fun line ->
             String.length line > String.length sc.Mv_check.Scenario.sc_name
             && String.sub line 0 (String.length sc.Mv_check.Scenario.sc_name)
                = sc.Mv_check.Scenario.sc_name)
           (String.split_on_char '\n' text)))
    Scenarios.all_scenarios

let test_mvcheck_exit_zero_when_clean () =
  if not (Sys.file_exists mvcheck_exe) then
    Alcotest.failf "mvcheck binary not built at %s" mvcheck_exe;
  let code, _ = run_mvcheck "run ping-pong-async --seeds 2 --jobs 2" in
  check_int "clean scenario exits 0" 0 code

let suite =
  [
    to_alcotest qcheck_map_order;
    to_alcotest qcheck_map_no_drop_dup;
    to_alcotest qcheck_find_first_lowest;
    ("pool: map re-raises the lowest-index exception", `Quick, test_map_raises_lowest);
    ("pool: jobs=1 runs inline in order", `Quick, test_run_inline_jobs1);
    ("rng: substream leaves the parent untouched", `Quick, test_substream_read_only);
    ("rng: substream is stable per index", `Quick, test_substream_stable);
    to_alcotest qcheck_substream_nonoverlap;
    ( "determinism: concurrent machines render identical traces + metrics",
      `Quick, test_concurrent_runs_deterministic );
    ("determinism: golden trace through a 2-domain pool", `Quick, test_golden_through_pool);
    ("explore_par = explore on a seeded bug", `Quick, test_explore_par_finds_same);
    ("explore_par = explore on a clean scenario", `Quick, test_explore_par_clean_same);
    ( "mvcheck run: nonzero exit + full report on failure",
      `Quick, test_mvcheck_exit_nonzero_and_full_report );
    ("mvcheck run: zero exit on a clean sweep", `Quick, test_mvcheck_exit_zero_when_clean);
  ]
