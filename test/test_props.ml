(* Property tests (qcheck) for the protocol-critical invariants the
   mvcheck model checker leans on:

   - Fault_plan: exact (seed, rate, sites) determinism, and per-site
     stream independence (masking other sites never shifts a site's
     randomness — the property that makes fault counterexamples stable
     under site filtering).
   - Addr / Page_table: address decomposition round-trips and
     map/walk/unmap coherence for arbitrary page sets.
   - Event_channel: server-side dedup keeps payload execution at-most-once
     under arbitrary duplicate/drop/delay fault seeds and schedules. *)

module Addr = Mv_hw.Addr
module Page_table = Mv_hw.Page_table
module Fault_plan = Mv_faults.Fault_plan
module Explore = Mv_check.Explore
module Scenario = Mv_check.Scenario
module Strategy = Mv_check.Strategy

(* QCheck_alcotest marks property tests `Slow by default, which the -q
   quick tier would skip; these properties are cheap, so force `Quick. *)
let to_alcotest t =
  let name, _, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

(* --- Fault_plan --- *)

let arb_rate = QCheck.float_range 0.0 1.0
let arb_seed = QCheck.int_bound 1_000_000

let arb_sites =
  (* A non-empty sublist of all_sites, chosen by bitmask. *)
  let n = List.length Fault_plan.all_sites in
  QCheck.map
    (fun mask ->
      let mask = 1 + (mask land ((1 lsl n) - 2)) in
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) Fault_plan.all_sites)
    QCheck.(int_bound ((1 lsl n) - 1))

let fire_seq plan site k =
  List.init k (fun i -> Fault_plan.fire plan site (string_of_int i))

let qcheck_plan_deterministic =
  QCheck.Test.make ~name:"fault plan: (seed,rate,sites) fully determines decisions"
    ~count:100
    QCheck.(triple arb_seed arb_rate arb_sites)
    (fun (seed, rate, sites) ->
      let mk () = Fault_plan.create ~seed ~rate ~sites () in
      let seq plan =
        List.concat_map (fun site -> fire_seq plan site 50) sites
      in
      seq (mk ()) = seq (mk ()))

let qcheck_plan_site_independence =
  QCheck.Test.make
    ~name:"fault plan: masking other sites never shifts a site's stream"
    ~count:100
    QCheck.(triple arb_seed arb_rate arb_sites)
    (fun (seed, rate, sites) ->
      let site = List.hd sites in
      let full = Fault_plan.create ~seed ~rate () in
      let masked = Fault_plan.create ~seed ~rate ~sites:[ site ] () in
      (* Drain unrelated streams on the full plan first: independence means
         this cannot perturb [site]'s stream. *)
      List.iter
        (fun s -> if s <> site then ignore (fire_seq full s 25))
        Fault_plan.all_sites;
      fire_seq full site 50 = fire_seq masked site 50)

let qcheck_plan_rate_extremes =
  QCheck.Test.make ~name:"fault plan: rate 0 never fires, rate 1 always fires"
    ~count:50
    QCheck.(pair arb_seed arb_sites)
    (fun (seed, sites) ->
      let never = Fault_plan.create ~seed ~rate:0.0 ~sites () in
      let always = Fault_plan.create ~seed ~rate:1.0 ~sites () in
      List.for_all
        (fun site ->
          (not (List.exists (fun x -> x) (fire_seq never site 20)))
          && List.for_all (fun x -> x) (fire_seq always site 20))
        sites)

let qcheck_sites_string_roundtrip =
  QCheck.Test.make ~name:"fault sites: to_string/of_string round-trip" ~count:200
    arb_sites
    (fun sites ->
      match Fault_plan.sites_of_string (Fault_plan.sites_to_string sites) with
      | Ok sites' -> sites' = sites
      | Error _ -> false)

(* --- Addr / Page_table --- *)

let qcheck_addr_indices_roundtrip =
  QCheck.Test.make ~name:"addr: of_indices/indices round-trip" ~count:200
    QCheck.(quad (int_bound 511) (int_bound 511) (int_bound 511) (int_bound 511))
    (fun (pml4, pdpt, pd, pt) ->
      let a = Addr.of_indices ~pml4 ~pdpt ~pd ~pt ~offset:0 in
      Addr.pml4_index a = pml4
      && Addr.pdpt_index a = pdpt
      && Addr.pd_index a = pd
      && Addr.pt_index a = pt
      && Addr.is_page_aligned a)

let qcheck_addr_page_roundtrip =
  QCheck.Test.make ~name:"addr: page_of/base_of_page round-trip" ~count:200
    QCheck.(int_bound (Addr.lower_half_limit - 1))
    (fun a ->
      let page = Addr.page_of a in
      Addr.base_of_page page = Addr.align_down a
      && Addr.page_offset a = a - Addr.align_down a)

(* Distinct page-aligned lower-half addresses from an arbitrary page set. *)
let pages_of_ints ints =
  List.sort_uniq compare (List.map (fun i -> abs i mod 100_000) ints)
  |> List.map Addr.base_of_page

let qcheck_page_table_map_walk_unmap =
  QCheck.Test.make ~name:"page table: map/walk/unmap coherence" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) int)
    (fun ints ->
      let addrs = pages_of_ints ints in
      let pt = Page_table.create () in
      List.iteri
        (fun i a ->
          Page_table.map pt a ~frame:(1000 + i)
            ~flags:Page_table.(f_present lor f_writable))
        addrs;
      let mapped_ok =
        List.for_all2
          (fun i a ->
            match Page_table.walk pt a with
            | Some pte, _levels -> pte.Page_table.frame = 1000 + i
            | None, _ -> false)
          (List.init (List.length addrs) Fun.id)
          addrs
      in
      let count_ok = Page_table.count_mapped pt = List.length addrs in
      let unmapped_ok =
        List.for_all (fun a -> Page_table.unmap pt a) addrs
        && Page_table.count_mapped pt = 0
        && List.for_all
             (fun a -> match Page_table.lookup pt a with None -> true | Some _ -> false)
             addrs
        && not (Page_table.unmap pt (List.hd addrs))
      in
      mapped_ok && count_ok && unmapped_ok)

(* --- Event_channel dedup idempotence --- *)

let dup_heavy seed =
  {
    Explore.fc_seed = seed;
    fc_rate = 0.8;
    fc_sites = Fault_plan.[ Chan_duplicate; Chan_drop; Chan_delay ];
  }

let qcheck_dedup_at_most_once =
  QCheck.Test.make
    ~name:"event channel: dedup keeps payloads at-most-once under duplication"
    ~count:12
    QCheck.(pair (int_bound 10_000) bool)
    (fun (seed, sync) ->
      let name = if sync then "ping-pong-sync" else "ping-pong-async" in
      let sc = Option.get (Mv_check.Scenarios.find name) in
      match
        Explore.run_once sc ~spec:(Strategy.Random seed) ~fc:(dup_heavy seed)
      with
      | Scenario.Pass, _ -> true
      | Scenario.Fail msg, _ -> QCheck.Test.fail_reportf "%s: %s" name msg)

let suite =
  [
    to_alcotest qcheck_plan_deterministic;
    to_alcotest qcheck_plan_site_independence;
    to_alcotest qcheck_plan_rate_extremes;
    to_alcotest qcheck_sites_string_roundtrip;
    to_alcotest qcheck_addr_indices_roundtrip;
    to_alcotest qcheck_addr_page_roundtrip;
    to_alcotest qcheck_page_table_map_walk_unmap;
    to_alcotest qcheck_dedup_at_most_once;
  ]
