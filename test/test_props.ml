(* Property tests (qcheck) for the protocol-critical invariants the
   mvcheck model checker leans on:

   - Fault_plan: exact (seed, rate, sites) determinism, and per-site
     stream independence (masking other sites never shifts a site's
     randomness — the property that makes fault counterexamples stable
     under site filtering).
   - Addr / Page_table: address decomposition round-trips and
     map/walk/unmap coherence for arbitrary page sets.
   - Event_channel: server-side dedup keeps payload execution at-most-once
     under arbitrary duplicate/drop/delay fault seeds and schedules. *)

module Addr = Mv_hw.Addr
module Page_table = Mv_hw.Page_table
module Fault_plan = Mv_faults.Fault_plan
module Explore = Mv_check.Explore
module Scenario = Mv_check.Scenario
module Strategy = Mv_check.Strategy

(* QCheck_alcotest marks property tests `Slow by default, which the -q
   quick tier would skip; these properties are cheap, so force `Quick. *)
let to_alcotest t =
  let name, _, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

(* --- Fault_plan --- *)

let arb_rate = QCheck.float_range 0.0 1.0
let arb_seed = QCheck.int_bound 1_000_000

let arb_sites =
  (* A non-empty sublist of all_sites, chosen by bitmask. *)
  let n = List.length Fault_plan.all_sites in
  QCheck.map
    (fun mask ->
      let mask = 1 + (mask land ((1 lsl n) - 2)) in
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) Fault_plan.all_sites)
    QCheck.(int_bound ((1 lsl n) - 1))

let fire_seq plan site k =
  List.init k (fun i -> Fault_plan.fire plan site (string_of_int i))

let qcheck_plan_deterministic =
  QCheck.Test.make ~name:"fault plan: (seed,rate,sites) fully determines decisions"
    ~count:100
    QCheck.(triple arb_seed arb_rate arb_sites)
    (fun (seed, rate, sites) ->
      let mk () = Fault_plan.create ~seed ~rate ~sites () in
      let seq plan =
        List.concat_map (fun site -> fire_seq plan site 50) sites
      in
      seq (mk ()) = seq (mk ()))

let qcheck_plan_site_independence =
  QCheck.Test.make
    ~name:"fault plan: masking other sites never shifts a site's stream"
    ~count:100
    QCheck.(triple arb_seed arb_rate arb_sites)
    (fun (seed, rate, sites) ->
      let site = List.hd sites in
      let full = Fault_plan.create ~seed ~rate () in
      let masked = Fault_plan.create ~seed ~rate ~sites:[ site ] () in
      (* Drain unrelated streams on the full plan first: independence means
         this cannot perturb [site]'s stream. *)
      List.iter
        (fun s -> if s <> site then ignore (fire_seq full s 25))
        Fault_plan.all_sites;
      fire_seq full site 50 = fire_seq masked site 50)

let qcheck_plan_rate_extremes =
  QCheck.Test.make ~name:"fault plan: rate 0 never fires, rate 1 always fires"
    ~count:50
    QCheck.(pair arb_seed arb_sites)
    (fun (seed, sites) ->
      let never = Fault_plan.create ~seed ~rate:0.0 ~sites () in
      let always = Fault_plan.create ~seed ~rate:1.0 ~sites () in
      List.for_all
        (fun site ->
          (not (List.exists (fun x -> x) (fire_seq never site 20)))
          && List.for_all (fun x -> x) (fire_seq always site 20))
        sites)

let qcheck_sites_string_roundtrip =
  QCheck.Test.make ~name:"fault sites: to_string/of_string round-trip" ~count:200
    arb_sites
    (fun sites ->
      match Fault_plan.sites_of_string (Fault_plan.sites_to_string sites) with
      | Ok sites' -> sites' = sites
      | Error _ -> false)

(* --- Addr / Page_table --- *)

let qcheck_addr_indices_roundtrip =
  QCheck.Test.make ~name:"addr: of_indices/indices round-trip" ~count:200
    QCheck.(quad (int_bound 511) (int_bound 511) (int_bound 511) (int_bound 511))
    (fun (pml4, pdpt, pd, pt) ->
      let a = Addr.of_indices ~pml4 ~pdpt ~pd ~pt ~offset:0 in
      Addr.pml4_index a = pml4
      && Addr.pdpt_index a = pdpt
      && Addr.pd_index a = pd
      && Addr.pt_index a = pt
      && Addr.is_page_aligned a)

let qcheck_addr_page_roundtrip =
  QCheck.Test.make ~name:"addr: page_of/base_of_page round-trip" ~count:200
    QCheck.(int_bound (Addr.lower_half_limit - 1))
    (fun a ->
      let page = Addr.page_of a in
      Addr.base_of_page page = Addr.align_down a
      && Addr.page_offset a = a - Addr.align_down a)

(* Distinct page-aligned lower-half addresses from an arbitrary page set. *)
let pages_of_ints ints =
  List.sort_uniq compare (List.map (fun i -> abs i mod 100_000) ints)
  |> List.map Addr.base_of_page

let qcheck_page_table_map_walk_unmap =
  QCheck.Test.make ~name:"page table: map/walk/unmap coherence" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) int)
    (fun ints ->
      let addrs = pages_of_ints ints in
      let pt = Page_table.create () in
      List.iteri
        (fun i a ->
          Page_table.map pt a ~frame:(1000 + i)
            ~flags:Page_table.(f_present lor f_writable))
        addrs;
      let mapped_ok =
        List.for_all2
          (fun i a ->
            match Page_table.walk pt a with
            | Some pte, _levels -> pte.Page_table.frame = 1000 + i
            | None, _ -> false)
          (List.init (List.length addrs) Fun.id)
          addrs
      in
      let count_ok = Page_table.count_mapped pt = List.length addrs in
      let unmapped_ok =
        List.for_all (fun a -> Page_table.unmap pt a) addrs
        && Page_table.count_mapped pt = 0
        && List.for_all
             (fun a -> match Page_table.lookup pt a with None -> true | Some _ -> false)
             addrs
        && not (Page_table.unmap pt (List.hd addrs))
      in
      mapped_ok && count_ok && unmapped_ok)

(* --- Mixed-size page tables vs a flat reference model --- *)

(* Random map/unmap/protect traffic at all three page sizes, confined to
   the first two 1 GiB regions of the lower half, checked against a flat
   per-page model evaluated by backward scan: the latest Map (or Unmap)
   covering a page governs it, and Protects on that page after the
   governing Map override its flags.  This exercises huge-leaf
   installation, auto-split on 4K traffic under a huge leaf, and the
   frame arithmetic the splits must preserve. *)

type mixed_op =
  | MMap of Page_table.size * int * int  (* aligned base page, flag selector *)
  | MUnmap of int  (* page *)
  | MProtect of int * int  (* page, flag selector *)

let mixed_region_pages = 2 * Addr.pages_per_1g

let mixed_flag_sets =
  Page_table.
    [|
      f_present lor f_writable;
      f_present;
      f_present lor f_user;
      f_present lor f_writable lor f_user;
    |]

(* Each op gets a distinct base frame so the model can spot a wrong
   governing mapping, not just a wrong offset. *)
let mixed_frame i = 10_000 * (i + 1)

let pp_mixed_op = function
  | MMap (s, b, fl) ->
      Printf.sprintf "map[%s] @%d fl%d" (Format.asprintf "%a" Page_table.pp_size s) b fl
  | MUnmap p -> Printf.sprintf "unmap @%d" p
  | MProtect (p, fl) -> Printf.sprintf "protect @%d fl%d" p fl

let arb_mixed_ops =
  let open QCheck in
  let gen_op =
    Gen.(
      int_bound (mixed_region_pages - 1) >>= fun page ->
      int_bound (Array.length mixed_flag_sets - 1) >>= fun fl ->
      int_bound 9 >>= fun kind ->
      match kind with
      | 0 | 1 | 2 | 3 -> return (MMap (Page_table.S4k, page, fl))
      | 4 | 5 -> return (MMap (Page_table.S2m, page land lnot (Addr.pages_per_2m - 1), fl))
      | 6 -> return (MMap (Page_table.S1g, page land lnot (Addr.pages_per_1g - 1), fl))
      | 7 | 8 -> return (MUnmap page)
      | _ -> return (MProtect (page, fl)))
  in
  make
    ~print:(fun ops -> String.concat "; " (List.map pp_mixed_op ops))
    (Gen.list_size Gen.(1 -- 25) gen_op)

let apply_mixed pt ops =
  List.iteri
    (fun i op ->
      match op with
      | MMap (size, base, fl) ->
          Page_table.map_size pt (Addr.base_of_page base) ~size ~frame:(mixed_frame i)
            ~flags:mixed_flag_sets.(fl)
      | MUnmap page -> ignore (Page_table.unmap pt (Addr.base_of_page page))
      | MProtect (page, fl) ->
          ignore (Page_table.protect pt (Addr.base_of_page page) ~flags:mixed_flag_sets.(fl)))
    ops

let model_lookup ops page =
  let rec scan rev_ops pending =
    match rev_ops with
    | [] -> None
    | (i, op) :: rest -> (
        match op with
        | MProtect (p, fl) when p = page ->
            scan rest (match pending with None -> Some fl | s -> s)
        | MUnmap p when p = page -> None
        | MMap (size, base, fl)
          when base <= page && page < base + Page_table.pages_of_size size ->
            let flags =
              match pending with
              | Some sel -> mixed_flag_sets.(sel)
              | None -> mixed_flag_sets.(fl)
            in
            Some (mixed_frame i + (page - base), flags)
        | _ -> scan rest pending)
  in
  scan (List.rev (List.mapi (fun i op -> (i, op)) ops)) None

(* Pages worth probing: the edges of every op's footprint and their
   immediate neighbours. *)
let mixed_probes ops =
  let add acc p = if p >= 0 && p < mixed_region_pages then p :: acc else acc in
  List.fold_left
    (fun acc op ->
      match op with
      | MMap (size, base, _) ->
          let n = Page_table.pages_of_size size in
          List.fold_left add acc [ base - 1; base; base + 1; base + n - 1; base + n ]
      | MUnmap p | MProtect (p, _) -> List.fold_left add acc [ p - 1; p; p + 1 ])
    [] ops
  |> List.sort_uniq compare

let qcheck_mixed_vs_model =
  QCheck.Test.make ~name:"page table: mixed-size ops match the flat reference model"
    ~count:300 arb_mixed_ops
    (fun ops ->
      let pt = Page_table.create () in
      apply_mixed pt ops;
      List.for_all
        (fun page ->
          let addr = Addr.base_of_page page in
          match (model_lookup ops page, fst (Page_table.walk_sized pt addr)) with
          | None, None -> true
          | Some (frame, flags), Some (pte, size) ->
              (* A huge leaf's pte carries the region's base frame. *)
              let real_frame =
                match size with
                | Page_table.S4k -> pte.Page_table.frame
                | Page_table.S2m ->
                    pte.Page_table.frame + (page - (page land lnot (Addr.pages_per_2m - 1)))
                | Page_table.S1g ->
                    pte.Page_table.frame + (page - (page land lnot (Addr.pages_per_1g - 1)))
              in
              real_frame = frame && pte.Page_table.pte_flags = flags
          | _ -> false)
        (mixed_probes ops))

let qcheck_walk_levels =
  QCheck.Test.make ~name:"page table: walk level count matches the leaf size"
    ~count:100
    QCheck.(pair (int_bound (mixed_region_pages - 1)) (int_bound 2))
    (fun (page, k) ->
      let size, base =
        match k with
        | 0 -> (Page_table.S4k, page)
        | 1 -> (Page_table.S2m, page land lnot (Addr.pages_per_2m - 1))
        | _ -> (Page_table.S1g, page land lnot (Addr.pages_per_1g - 1))
      in
      let pt = Page_table.create () in
      Page_table.map_size pt (Addr.base_of_page base) ~size ~frame:42
        ~flags:Page_table.f_present;
      match Page_table.walk_sized pt (Addr.base_of_page page) with
      | Some (_, size'), levels ->
          size' = size
          && levels = (match size with Page_table.S1g -> 2 | S2m -> 3 | S4k -> 4)
      | None, _ -> false)

(* --- Size-aware TLB range invalidation --- *)

let qcheck_tlb_range_invalidate =
  QCheck.Test.make
    ~name:"tlb: invalidate_range drops exactly the intersecting entries"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40)
           (pair (int_bound (mixed_region_pages - 1)) (int_bound 9)))
        (pair (int_bound (mixed_region_pages - 1)) (int_bound 100_000)))
    (fun (entries, (r0, rlen)) ->
      let rlen = 1 + rlen in
      (* Capacities large enough that nothing is evicted during fill. *)
      let tlb = Mv_hw.Tlb.create ~capacity:4096 ~capacity_2m:256 ~capacity_1g:64 () in
      let pte = Page_table.{ frame = 7; pte_flags = f_present } in
      (* Keep only entries with pairwise-disjoint coverage, so a dropped
         entry cannot be shadowed by a coarser one covering the same page. *)
      let keyed =
        List.fold_left
          (fun acc (page, k) ->
            let size =
              if k < 7 then Page_table.S4k else if k < 9 then Page_table.S2m else Page_table.S1g
            in
            let shift =
              match size with Page_table.S4k -> 0 | S2m -> 9 | S1g -> 18
            in
            let lo = (page lsr shift) lsl shift and hi = ((page lsr shift) + 1) lsl shift in
            if List.exists (fun (_, _, lo', hi') -> lo < hi' && hi > lo') acc then acc
            else (page, size, lo, hi) :: acc)
          [] entries
      in
      List.iter (fun (page, size, _, _) -> Mv_hw.Tlb.fill ~size tlb ~page pte) keyed;
      Mv_hw.Tlb.invalidate_range tlb ~page:r0 ~npages:rlen;
      List.for_all
        (fun (page, _, lo, hi) ->
          let intersects = lo < r0 + rlen && hi > r0 in
          let found = Mv_hw.Tlb.lookup tlb ~page <> None in
          found = not intersects)
        keyed)

(* --- Event_channel dedup idempotence --- *)

let dup_heavy seed =
  {
    Explore.fc_seed = seed;
    fc_rate = 0.8;
    fc_sites = Fault_plan.[ Chan_duplicate; Chan_drop; Chan_delay ];
  }

let qcheck_dedup_at_most_once =
  QCheck.Test.make
    ~name:"event channel: dedup keeps payloads at-most-once under duplication"
    ~count:12
    QCheck.(pair (int_bound 10_000) bool)
    (fun (seed, sync) ->
      let name = if sync then "ping-pong-sync" else "ping-pong-async" in
      let sc = Option.get (Mv_check.Scenarios.find name) in
      match
        Explore.run_once sc ~spec:(Strategy.Random seed) ~fc:(dup_heavy seed)
      with
      | Scenario.Pass, _ -> true
      | Scenario.Fail msg, _ -> QCheck.Test.fail_reportf "%s: %s" name msg)

(* --- overload model: token bucket, bounded rings, per-group FIFO --- *)

(* The admission-control regulator's defining bound, straight off the
   bucket's pure state: over any window of [w] cycles starting from a
   full bucket, admissions never exceed [burst + rate * w]. *)
let qcheck_token_bucket_window_bound =
  QCheck.Test.make
    ~name:"token bucket: admissions over any window <= burst + rate * window"
    ~count:200
    QCheck.(
      triple
        (pair (int_range 1 1000) (int_range 1 8))
        (list_of_size Gen.(1 -- 80) (int_bound 5_000))
        (int_bound 1_000))
    (fun ((rate_millis, burst), gaps, t0) ->
      let rate = float_of_int rate_millis /. 1_000_000.0 in
      let bucket = Mv_util.Token_bucket.create ~rate ~burst ~now:t0 in
      let now = ref t0 and admitted = ref 0 and last = ref t0 in
      List.iter
        (fun gap ->
          now := !now + gap;
          if Mv_util.Token_bucket.take bucket ~now:!now then begin
            incr admitted;
            last := !now
          end)
        gaps;
      let window = float_of_int (!last - t0) in
      float_of_int !admitted <= float_of_int burst +. (rate *. window) +. 1e-9)

(* End-to-end through the load generator: whatever the offered load and
   arrival process, an endpoint's slot ring never grows past the
   configured capacity — overload shows up as sheds/queueing, never as an
   unbounded ring. *)
let qcheck_ring_occupancy_bounded =
  QCheck.Test.make
    ~name:"fabric: ring occupancy high-water <= configured ring capacity"
    ~count:8
    QCheck.(triple (int_range 1 8) (int_bound 1_000) bool)
    (fun (ring_capacity, seed, bursty) ->
      let open Mv_workloads.Loadgen in
      let cfg =
        {
          default_config with
          lg_groups = 20;
          lg_calls_per_group = 8;
          lg_workers_per_group = 8;
          lg_offered_cps = 2_000_000.0;
          lg_arrival = (if bursty then Bursty else Poisson);
          lg_seed = seed;
          lg_admission =
            Some
              (Mv_hvm.Fabric.make_admission ~policy:Mv_hvm.Fabric.Shed ~ring_capacity
                 ~shed_retries:1 ());
        }
      in
      let r = run cfg in
      if r.r_ring_hw <= ring_capacity then true
      else
        QCheck.Test.fail_reportf "ring high-water %d > capacity %d" r.r_ring_hw
          ring_capacity)

(* A group that issues its requests sequentially must see them execute in
   issue order even when the admission gate sheds and the stub retries
   with backoff: a retried request may be dropped, but it can never leak
   a stale ring slot that executes out of order behind a later call. *)
let qcheck_per_group_fifo_under_shedding =
  QCheck.Test.make
    ~name:"fabric: per-group issue order survives shedding and retries"
    ~count:20
    QCheck.(pair (int_bound 10_000) (int_range 2 5))
    (fun (seed, groups) ->
      let machine = Mv_engine.Machine.create () in
      let exec = machine.Mv_engine.Machine.exec in
      let fabric = Mv_hvm.Fabric.create machine ~kind:Mv_hvm.Event_channel.Async in
      Mv_hvm.Fabric.set_admission fabric
        (Some
           (Mv_hvm.Fabric.make_admission ~policy:Mv_hvm.Fabric.Shed ~ring_capacity:2
              ~rate:2e-4 ~burst:1 ~shed_retries:2 ()));
      Mv_hvm.Fabric.start_pool fabric
        ~spawn:(fun ~name ~core body -> Mv_engine.Exec.spawn exec ~cpu:core ~name body)
        ~cores:[ 0; 1 ] ();
      let calls = 6 in
      let ran : (int * int) list ref = ref [] in
      let rng = Mv_util.Rng.create ~seed in
      let threads =
        List.init groups (fun g ->
            let ep =
              Mv_hvm.Fabric.endpoint fabric
                ~name:(Printf.sprintf "fifo-%d" g)
                ~ros_core:(g mod 2) ~hrt_core:7
            in
            let jitter =
              Array.init calls (fun _ -> 1 + int_of_float (Mv_util.Rng.float rng 3_000.0))
            in
            Mv_engine.Exec.spawn exec ~cpu:7
              ~name:(Printf.sprintf "fifo-issuer-%d" g)
              (fun () ->
                for i = 0 to calls - 1 do
                  Mv_engine.Exec.sleep exec jitter.(i);
                  ignore
                    (Mv_hvm.Fabric.offer fabric ep
                       {
                         Mv_hvm.Event_channel.req_kind = Printf.sprintf "fifo-%d-%d" g i;
                         req_run = (fun () -> ran := (g, i) :: !ran);
                       })
                done))
      in
      ignore
        (Mv_engine.Exec.spawn exec ~cpu:0 ~name:"fifo-coordinator" (fun () ->
             List.iter (fun th -> Mv_engine.Exec.join exec th) threads;
             Mv_hvm.Fabric.shutdown fabric));
      Mv_engine.Sim.run machine.Mv_engine.Machine.sim;
      let order = List.rev !ran in
      List.for_all
        (fun g ->
          let mine = List.filter_map (fun (g', i) -> if g' = g then Some i else None) order in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          if increasing mine then true
          else
            QCheck.Test.fail_reportf "group %d ran out of order: [%s]" g
              (String.concat ";" (List.map string_of_int mine)))
        (List.init groups (fun g -> g)))

(* --- Phys_mem: the NUMA-sharded frame allocator --- *)

module Phys_mem = Mv_hw.Phys_mem

(* Small zones so exhaustion (and therefore fallback) is reachable within
   a few dozen allocations. *)
let small_pm ?(cores_per_socket = 4) sockets =
  Phys_mem.create ~frames_per_zone:8 ~cores_per_socket ~sockets ~hrt_fraction:0.25 ()

let qcheck_pm_fallback_order =
  QCheck.Test.make
    ~name:"phys_mem: fallback order is distance-sorted with ties to the lowest zone"
    ~count:200
    QCheck.(pair (1 -- 8) (int_bound 7))
    (fun (sockets, z) ->
      let z = z mod sockets in
      let pm = small_pm sockets in
      let expected =
        List.sort
          (fun a b -> compare (abs (a - z), a) (abs (b - z), b))
          (List.init sockets (fun i -> i))
      in
      Phys_mem.fallback_order pm ~zone:z = expected)

let qcheck_pm_alloc_near_local =
  QCheck.Test.make
    ~name:"phys_mem: alloc_near drains the core's own zone before spilling" ~count:200
    QCheck.(triple (1 -- 5) (1 -- 8) (int_bound 63))
    (fun (sockets, cps, core) ->
      let pm = small_pm ~cores_per_socket:cps sockets in
      let core = core mod (sockets * cps) in
      let local = Phys_mem.zone_of_core pm core in
      (* Without frees, the zone sequence must be: a non-empty local
         prefix, then never local again (local-first means a non-local
         frame proves local exhaustion). *)
      let total = Phys_mem.total pm Phys_mem.Ros_region in
      let spilled = ref false in
      let ok = ref true in
      for _ = 1 to total do
        let f = Phys_mem.alloc_near pm ~core Phys_mem.Ros_region in
        let z = Phys_mem.zone_of_frame pm f in
        if z = local then (if !spilled then ok := false) else spilled := true
      done;
      !ok)

let qcheck_pm_hinted_alloc_vs_model =
  QCheck.Test.make
    ~name:"phys_mem: hinted alloc matches the distance-ordered freelist model" ~count:100
    QCheck.(pair (1 -- 5) (list_of_size Gen.(1 -- 80) (int_bound 15)))
    (fun (sockets, hints) ->
      (* Measure per-zone ROS capacity on a scratch instance, then replay
         random hints against a fresh one, predicting each allocation's
         zone with a plain free-count model over [fallback_order]. *)
      let probe = small_pm sockets in
      let cap = Array.make sockets 0 in
      let total = Phys_mem.total probe Phys_mem.Ros_region in
      for _ = 1 to total do
        let z = Phys_mem.zone_of_frame probe (Phys_mem.alloc probe Phys_mem.Ros_region) in
        cap.(z) <- cap.(z) + 1
      done;
      let pm = small_pm sockets in
      let free = Array.copy cap in
      let remaining = ref total in
      List.for_all
        (fun h ->
          !remaining = 0
          ||
          let z = h mod sockets in
          let expected =
            List.find (fun z' -> free.(z') > 0) (Phys_mem.fallback_order pm ~zone:z)
          in
          let got = Phys_mem.zone_of_frame pm (Phys_mem.alloc pm ~zone:z Phys_mem.Ros_region) in
          free.(got) <- free.(got) - 1;
          decr remaining;
          got = expected
          || QCheck.Test.fail_reportf "hint %d: allocated from zone %d, model says %d" z got
               expected)
        hints)

let qcheck_pm_conservation =
  QCheck.Test.make
    ~name:"phys_mem: frames stay distinct and conserved across alloc/free storms"
    ~count:100
    QCheck.(pair (1 -- 4) (list_of_size Gen.(1 -- 120) (pair bool (int_bound 1023))))
    (fun (sockets, ops) ->
      let pm = small_pm sockets in
      let total = Phys_mem.total pm Phys_mem.Ros_region in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_alloc, k) ->
          if !ok then begin
            (if is_alloc && List.length !live < total then begin
               let f = Phys_mem.alloc pm ~zone:(k mod sockets) Phys_mem.Ros_region in
               (* No double allocation: a frame must never be handed out
                  twice, no matter which zone's freelist served it. *)
               if List.mem f !live then ok := false else live := f :: !live
             end
             else
               match !live with
               | [] -> ()
               | l ->
                   let i = k mod List.length l in
                   Phys_mem.free pm (List.nth l i);
                   live := List.filteri (fun j _ -> j <> i) l);
            if Phys_mem.allocated pm Phys_mem.Ros_region <> List.length !live then
              ok := false
          end)
        ops;
      List.iter (fun f -> Phys_mem.free pm f) !live;
      !ok && Phys_mem.allocated pm Phys_mem.Ros_region = 0)

(* --- Event_queue ------------------------------------------------- *)

module Event_queue = Mv_engine.Event_queue

(* The heap's contract — pops come out as a stable sort by (time, push
   sequence) — is what makes the whole simulation deterministic, and the
   SoA heap's swap/sift code is exactly the kind of index arithmetic a
   model test catches.  Ops are interleaved pushes (Some time) and pops
   (None) against a naive insertion-ordered list model. *)
let qcheck_event_queue_vs_model =
  QCheck.Test.make
    ~name:"event_queue: pop order = stable sort by (time, seq) under interleaved push/pop"
    ~count:200
    QCheck.(list (option (int_bound 1000)))
    (fun ops ->
      let q = Event_queue.create ~capacity:2 () in
      (* Model: (time, seq, payload) in insertion order; popping takes the
         first entry with the minimal time (stability = insertion order). *)
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let model_pop () =
        match !model with
        | [] -> None
        | first :: rest ->
            let best =
              List.fold_left
                (fun (bt, bs, bv) (t, s, v) ->
                  if t < bt then (t, s, v) else (bt, bs, bv))
                first rest
            in
            let _, bs, _ = best in
            model := List.filter (fun (_, s, _) -> s <> bs) !model;
            Some best
      in
      let check_pop () =
        (* next_time must agree with the model's minimum before the pop. *)
        let expect_next =
          List.fold_left (fun acc (t, _, _) -> min acc t) max_int !model
        in
        if Event_queue.next_time q <> expect_next then ok := false;
        match (Event_queue.pop q, model_pop ()) with
        | None, None -> ()
        | Some (t, v), Some (mt, _, mv) -> if t <> mt || v <> mv then ok := false
        | Some _, None | None, Some _ -> ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | Some time ->
              Event_queue.push q ~time !seq;
              model := !model @ [ (time, !seq, !seq) ];
              incr seq
          | None -> check_pop ());
          if Event_queue.size q <> List.length !model then ok := false)
        ops;
      while not (Event_queue.is_empty q) || !model <> [] do
        check_pop ()
      done;
      !ok && Event_queue.next_time q = max_int && Event_queue.peek_time q = None)

(* --- Partition lending: ownership, no stranding, FIFO drain ------- *)

(* A random program of {spawn jobs, sleep, toggle lend/reclaim} against a
   [2;1] elastic carve.  Jobs land on partition 1's last *current* core,
   so they ride every re-home.  Invariants, checked synchronously after
   every operation (the controller's segment is host-atomic):

   - every core belongs to exactly one partition handle at every step;
   - the instant a lend returns, no job fiber sits on the moved core;
   - per-queue FIFO across drain/re-home: with the engine's plain FIFO
     dispatch, the completion stream on each core must be ascending in
     spawn id — a drain that reordered or interleaved its block would
     break the subsequence. *)
let qcheck_lending_invariants =
  QCheck.Test.make
    ~name:"partition lending: exclusive ownership, no stranded fiber, FIFO drain"
    ~count:40
    QCheck.(list_of_size Gen.(1 -- 14) (pair (int_bound 2) (int_bound 5)))
    (fun ops ->
      let module Machine = Mv_engine.Machine in
      let module Exec = Mv_engine.Exec in
      let module Topology = Mv_hw.Topology in
      let machine = Machine.create ~hrt_parts:[ 2; 1 ] () in
      let exec = machine.Machine.exec in
      let topo = machine.Machine.topo in
      let hvm = Mv_hvm.Hvm.create machine ~ros:(Mv_ros.Kernel.create machine) in
      let lendc = List.nth (Topology.cores_of topo 1) 1 in
      let bad = ref None in
      let note msg = if !bad = None then bad := Some msg in
      let check_ownership () =
        let owners = Array.make (Topology.ncores topo) 0 in
        List.iter
          (fun p ->
            List.iter (fun c -> owners.(c) <- owners.(c) + 1) (Mv_hw.Partition.cores p))
          (Topology.partitions topo);
        Array.iteri
          (fun c k ->
            if k <> 1 then note (Printf.sprintf "core %d in %d partitions" c k))
          owners
      in
      let job_tids = Hashtbl.create 32 in
      let next_job = ref 0 in
      let completions = ref [] in
      let spawn_job () =
        let id = !next_job in
        incr next_job;
        let cores = Topology.cores_of topo 1 in
        let target = List.nth cores (List.length cores - 1) in
        let th =
          Exec.spawn exec ~cpu:target
            ~name:(Printf.sprintf "job-%d" id)
            (fun () ->
              Machine.charge machine (300 + (100 * (id mod 4)));
              completions := (id, Exec.cpu_of (Exec.self exec)) :: !completions)
        in
        Hashtbl.replace job_tids (Exec.tid th) id
      in
      ignore
        (Exec.spawn exec ~cpu:0 ~name:"controller" (fun () ->
             List.iter
               (fun (kind, arg) ->
                 (match kind with
                 | 0 -> for _ = 0 to arg mod 3 do spawn_job () done
                 | 1 -> Exec.sleep exec ((arg + 1) * 400)
                 | _ ->
                     if Topology.partition_of topo lendc = 1 then begin
                       Mv_hvm.Hvm.lend_core hvm ~core:lendc ~dst:2;
                       (* No job may remain on the moved core's queue. *)
                       List.iter
                         (fun th ->
                           if Hashtbl.mem job_tids (Exec.tid th) then
                             note
                               (Printf.sprintf "job %d stranded on lent core"
                                  (Hashtbl.find job_tids (Exec.tid th))))
                         (Exec.runq exec ~cpu:lendc)
                     end
                     else Mv_hvm.Hvm.reclaim_core hvm ~core:lendc);
                 check_ownership ())
               ops;
             if Topology.partition_of topo lendc <> 1 then
               Mv_hvm.Hvm.reclaim_core hvm ~core:lendc));
      Mv_engine.Sim.run machine.Machine.sim;
      (match !bad with
      | Some msg -> QCheck.Test.fail_reportf "%s" msg
      | None -> ());
      let done_ids = List.map fst !completions in
      if List.length done_ids <> !next_job then
        QCheck.Test.fail_reportf "%d jobs spawned, %d completed" !next_job
          (List.length done_ids);
      if List.sort_uniq compare done_ids <> List.sort compare done_ids then
        QCheck.Test.fail_reportf "a job completed twice";
      let stream = List.rev !completions in
      List.for_all
        (fun cpu ->
          let mine = List.filter_map (fun (i, c) -> if c = cpu then Some i else None) stream in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          increasing mine
          || QCheck.Test.fail_reportf "core %d ran jobs out of spawn order: [%s]" cpu
               (String.concat ";" (List.map string_of_int mine)))
        (List.init (Topology.ncores topo) (fun c -> c)))

let suite =
  [
    to_alcotest qcheck_plan_deterministic;
    to_alcotest qcheck_plan_site_independence;
    to_alcotest qcheck_plan_rate_extremes;
    to_alcotest qcheck_sites_string_roundtrip;
    to_alcotest qcheck_addr_indices_roundtrip;
    to_alcotest qcheck_addr_page_roundtrip;
    to_alcotest qcheck_page_table_map_walk_unmap;
    to_alcotest qcheck_mixed_vs_model;
    to_alcotest qcheck_walk_levels;
    to_alcotest qcheck_tlb_range_invalidate;
    to_alcotest qcheck_dedup_at_most_once;
    to_alcotest qcheck_token_bucket_window_bound;
    to_alcotest qcheck_ring_occupancy_bounded;
    to_alcotest qcheck_per_group_fifo_under_shedding;
    to_alcotest qcheck_pm_fallback_order;
    to_alcotest qcheck_pm_alloc_near_local;
    to_alcotest qcheck_pm_hinted_alloc_vs_model;
    to_alcotest qcheck_pm_conservation;
    to_alcotest qcheck_event_queue_vs_model;
    to_alcotest qcheck_lending_invariants;
  ]
