(* The NESL VCODE interpreter — the authors' second hand-ported runtime
   (paper, Section 2) — running data-parallel vector programs.

   Demonstrates: VCODE assembly (scans, packs, reductions, recursion), and
   the same interpreter fanning its vector operations out over a worker
   pool on Linux vs. on AeroKernel threads.

   Run with:  dune exec examples/nesl_vcode.exe *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
open Mv_vcode

let show name out =
  Printf.printf "%-22s => %s\n" name
    (String.concat " " (List.map (Format.asprintf "%a" Vcode.pp_value) out))

let () =
  print_endline "--- VCODE programs (sequential, dry cost model) ---";
  let dry = Vcode.create ~charge:(fun _ -> ()) () in
  let run src stack = Vcode.run dry (Vcode.parse src) stack in
  show "sum of squares 0..9" (run (Samples.sum_of_squares 10) []);
  show "factorial 12" (run (Samples.factorial 12) []);
  show "line of sight"
    (run Samples.line_of_sight [ Vcode.int_vec [| 3; 1; 4; 1; 5; 9; 2; 6 |] ]);
  show "dot product"
    (run Samples.dot_product
       [ Vcode.float_vec [| 1.; 2.; 3. |]; Vcode.float_vec [| 4.; 5.; 6. |] ]);
  show "segmented matvec"
    (run Samples.matvec_segmented
       [ Vcode.int_vec [| 2; 3; 1 |]; Vcode.float_vec [| 1.; 2.; 3.; 4.; 5.; 6. |] ]);

  print_endline "\n--- the same vector program on 4-worker pools ---";
  let n = 20_000 in
  (* Linux backend *)
  let machine = Machine.create () in
  let kernel = Mv_ros.Kernel.create machine in
  let t_linux = ref 0 in
  ignore
    (Mv_ros.Kernel.spawn_process kernel ~name:"vcode" (fun p ->
         let env = Mv_guest.Env.native kernel p in
         let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Linux env) ~nworkers:4 in
         let interp = Vcode.create ~pool ~charge:(fun c -> env.Mv_guest.Env.work c) () in
         let t0 = Exec.local_now machine.Machine.exec in
         ignore (Vcode.run interp (Vcode.parse (Samples.sum_of_squares n)) []);
         t_linux := Exec.local_now machine.Machine.exec - t0;
         Mv_parallel.Pool.shutdown pool));
  Sim.run machine.Machine.sim;
  (* AeroKernel backend *)
  let machine2 = Machine.create ~hrt_cores:5 () in
  let nk = Mv_aerokernel.Nautilus.create machine2 in
  let t_hrt = ref 0 in
  let master = List.hd (Mv_aerokernel.Nautilus.cores nk) in
  ignore
    (Exec.spawn machine2.Machine.exec ~cpu:master ~name:"vcode-hrt" (fun () ->
         Mv_aerokernel.Nautilus.boot nk;
         let pool = Mv_parallel.Pool.create (Mv_parallel.Pool.Aerokernel nk) ~nworkers:4 in
         let interp = Vcode.create ~pool ~charge:(fun c -> Machine.charge machine2 c) () in
         let t0 = Exec.local_now machine2.Machine.exec in
         ignore (Vcode.run interp (Vcode.parse (Samples.sum_of_squares n)) []);
         t_hrt := Exec.local_now machine2.Machine.exec - t0;
         Mv_parallel.Pool.shutdown pool));
  Sim.run machine2.Machine.sim;
  Printf.printf "vector length %d: Linux pool %.1f us, AeroKernel pool %.1f us (%.2fx)\n" n
    (Mv_util.Cycles.to_us !t_linux) (Mv_util.Cycles.to_us !t_hrt)
    (float_of_int !t_linux /. float_of_int !t_hrt)
