(* The Native usage model: a parallel runtime living entirely in the HRT.

   The paper's motivation (Section 2) is that hand-porting parallel
   runtimes (Legion, NESL) to the Nautilus AeroKernel sped up HPCG by up
   to 20 % (Xeon Phi) / 40 % (x64), because kernel-mode thread primitives
   cost orders of magnitude less than Linux's.  Multiverse's endgame — the
   Native model — is a runtime that uses only AeroKernel services.

   This example runs the same HPCG conjugate-gradient solve on a 4-worker
   fork-join pool twice: Linux pthreads parked on futexes, and AeroKernel
   threads on the HRT cores.  Same numerics, same convergence; only the
   runtime-system substrate differs.

   Run with:  dune exec examples/hpcg_native.exe [nx]   (default 12) *)

module Machine = Mv_engine.Machine
module Sim = Mv_engine.Sim
module Exec = Mv_engine.Exec
open Mv_parallel

let () =
  let nx = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12 in
  let workers = 4 in

  (* Linux: a user-level runtime in a ROS process. *)
  let linux = ref None in
  let machine = Machine.create () in
  let kernel = Mv_ros.Kernel.create machine in
  ignore
    (Mv_ros.Kernel.spawn_process kernel ~name:"hpcg" (fun p ->
         let env = Mv_guest.Env.native kernel p in
         let pool = Pool.create (Pool.Linux env) ~nworkers:workers in
         let t0 = Exec.local_now machine.Machine.exec in
         let r = Hpcg.run pool ~nx () in
         let t = Exec.local_now machine.Machine.exec - t0 in
         Pool.shutdown pool;
         linux := Some (r, t, Mv_util.Histogram.count p.Mv_ros.Process.syscall_counts "futex")));
  Sim.run machine.Machine.sim;
  let rl, tl, futexes = Option.get !linux in

  (* Native model: the same runtime as pure AeroKernel threads. *)
  let hrt = ref None in
  let machine2 = Machine.create ~hrt_cores:(workers + 1) () in
  let nk = Mv_aerokernel.Nautilus.create machine2 in
  let master = List.hd (Mv_aerokernel.Nautilus.cores nk) in
  ignore
    (Exec.spawn machine2.Machine.exec ~cpu:master ~name:"hpcg-hrt" (fun () ->
         Mv_aerokernel.Nautilus.boot nk;
         let pool = Pool.create (Pool.Aerokernel nk) ~nworkers:workers in
         let t0 = Exec.local_now machine2.Machine.exec in
         let r = Hpcg.run pool ~nx () in
         let t = Exec.local_now machine2.Machine.exec - t0 in
         Pool.shutdown pool;
         hrt := Some (r, t)));
  Sim.run machine2.Machine.sim;
  let rn, tn = Option.get !hrt in

  Printf.printf "HPCG %d^3, %d workers, %d parallel regions\n\n" nx workers rl.Hpcg.regions;
  Printf.printf "Linux pthreads : %8.3f ms  (%d CG iters, residual %.2e, %d futex calls)\n"
    (Mv_util.Cycles.to_ms tl) rl.Hpcg.iterations rl.Hpcg.final_residual futexes;
  Printf.printf "HRT native     : %8.3f ms  (%d CG iters, residual %.2e, zero syscalls)\n"
    (Mv_util.Cycles.to_ms tn) rn.Hpcg.iterations rn.Hpcg.final_residual;
  Printf.printf "\nAeroKernel speedup: %.2fx (converged: %b/%b)\n"
    (float_of_int tl /. float_of_int tn)
    (Hpcg.verify rl) (Hpcg.verify rn);
  print_endline
    "Shrink nx to make regions finer (bigger win); grow it to amortize\n\
     synchronization (smaller win) — the trade the paper's Section 2 describes."
